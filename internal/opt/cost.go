// Package opt plays the role of the query optimizer's estimation machinery:
// it attaches estimated cardinalities (N_i) and per-row CPU/IO costs to
// every plan node, derived from catalog statistics under the classic
// simplifying assumptions (attribute independence, containment for joins).
//
// These estimates are the exact inputs the paper's client-side progress
// estimator consumes (§2.2), and their errors — which arise naturally here
// from data skew and correlation, just as in a real optimizer — are the
// phenomenon the refinement (§4.1) and bounding (§4.2) techniques attack.
package opt

import "math"

// CostModel holds the virtual-time cost primitives, in nanoseconds. The
// execution engine charges actual work with the same primitives, so
// optimizer cost estimates are *structurally* right but *numerically*
// wrong exactly where cardinality estimates are wrong — mirroring real
// systems, where cost model error is dominated by cardinality error.
type CostModel struct {
	// CPU per row passed through an operator (iterator overhead).
	CPUTuple float64
	// CPU per expression-tree node evaluated per row.
	CPUExprUnit float64
	// Hash table insert / probe per row.
	CPUHashInsert float64
	CPUHashProbe  float64
	// Sort comparison cost (charged ~log2(n) times per row).
	CPUSortCompare float64
	// Aggregate accumulator update per aggregate per row.
	CPUAggUpdate float64
	// Exchange per-row transfer cost (packet overhead amortized).
	CPUExchangeRow float64
	// Per-row cost in batch (columnstore) mode; far below CPUTuple,
	// reflecting the paper's §4.7 batch-processing speedups.
	CPUBatchRow float64
	// B-tree descent CPU per level.
	CPUSeekLevel float64
	// Spool row copy cost.
	CPUSpoolRow float64

	// Page I/O: a logical read that hits the buffer pool vs. a physical
	// read from simulated disk.
	IOLogicalPage  float64
	IOPhysicalPage float64
	// Columnstore segment read (one segment ~ one large sequential unit).
	IOSegment float64
	// IORetryBackoff is the virtual-time penalty per transient-fault retry
	// issued by the storage fault-injection harness (the backoff a real
	// engine sleeps before re-issuing a failed read).
	IORetryBackoff float64

	// SortMemoryRows is the in-memory sort budget; larger inputs spill to
	// simulated disk and merge in passes of SortMergeFanIn runs.
	SortMemoryRows int64
	SortMergeFanIn int
	// SpillIOPerRow is the sequential write+read cost per row per merge
	// pass.
	SpillIOPerRow float64
}

// DefaultCostModel returns the cost primitives used across the repository.
// Magnitudes are loosely SSD-era: ~50µs physical page read, ~100ns per-row
// CPU. Only ratios matter for the experiments.
func DefaultCostModel() *CostModel {
	return &CostModel{
		CPUTuple:       100,
		CPUExprUnit:    20,
		CPUHashInsert:  150,
		CPUHashProbe:   120,
		CPUSortCompare: 30,
		CPUAggUpdate:   60,
		CPUExchangeRow: 80,
		CPUBatchRow:    12,
		CPUSeekLevel:   500,
		CPUSpoolRow:    50,
		IOLogicalPage:  2_000,
		IOPhysicalPage: 50_000,
		IOSegment:      20_000,
		IORetryBackoff: 200_000,
		SortMemoryRows: 8192,
		SortMergeFanIn: 8,
		SpillIOPerRow:  250,
	}
}

// SortRowCPU returns the per-row CPU cost of sorting n rows.
func (cm *CostModel) SortRowCPU(n float64) float64 {
	if n < 2 {
		return cm.CPUSortCompare
	}
	return cm.CPUSortCompare * math.Log2(n)
}

// SortMergePasses returns how many external merge passes a sort of n rows
// needs (0 when it fits in memory).
func (cm *CostModel) SortMergePasses(n float64) int {
	if cm.SortMemoryRows <= 0 || n <= float64(cm.SortMemoryRows) {
		return 0
	}
	runs := math.Ceil(n / float64(cm.SortMemoryRows))
	fan := float64(cm.SortMergeFanIn)
	if fan < 2 {
		fan = 2
	}
	passes := 0
	for runs > 1 {
		runs = math.Ceil(runs / fan)
		passes++
	}
	return passes
}
