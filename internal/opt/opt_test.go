package opt

import (
	"math"
	"testing"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
	"lqs/internal/sim"
)

// testDB builds a two-table database: orders (uniform) and lines (skewed
// foreign key), the standard shape for join estimation tests.
func testDB(t testing.TB) (*catalog.Catalog, *storage.Database) {
	cat := catalog.NewCatalog()
	orders := catalog.NewTable("orders",
		catalog.Column{Name: "o_id", Kind: types.KindInt},
		catalog.Column{Name: "o_cust", Kind: types.KindInt},
		catalog.Column{Name: "o_total", Kind: types.KindFloat},
	)
	orders.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	cat.Add(orders)
	lines := catalog.NewTable("lines",
		catalog.Column{Name: "l_oid", Kind: types.KindInt},
		catalog.Column{Name: "l_qty", Kind: types.KindInt},
		catalog.Column{Name: "l_price", Kind: types.KindFloat},
	)
	lines.AddIndex(&catalog.Index{Name: "ix_oid", KeyCols: []int{0}})
	cat.Add(lines)

	db := storage.NewDatabase(cat, 1<<20)
	rng := sim.NewRNG(7)
	const nOrders = 2000
	oRows := make([]types.Row, nOrders)
	for i := range oRows {
		oRows[i] = types.Row{types.Int(int64(i)), types.Int(rng.Int63n(100)), types.Float(rng.Float64() * 1000)}
	}
	db.Load("orders", oRows)
	z := sim.NewZipf(rng, nOrders, 1.0)
	lRows := make([]types.Row, 10000)
	for i := range lRows {
		lRows[i] = types.Row{types.Int(z.Next() - 1), types.Int(1 + rng.Int63n(50)), types.Float(rng.Float64() * 100)}
	}
	db.Load("lines", lRows)
	db.BuildAllStats(64)
	return cat, db
}

func estPlan(t testing.TB, cat *catalog.Catalog, root *plan.Node) *plan.Plan {
	p := plan.Finalize(root)
	NewEstimator(cat).Estimate(p)
	return p
}

func TestScanEstimateIsTableCardinality(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	p := estPlan(t, cat, b.TableScan("orders", nil, nil))
	if p.Root.EstRows != 2000 {
		t.Fatalf("scan EstRows = %v", p.Root.EstRows)
	}
	if p.Root.EstCPUPerRow <= 0 || p.Root.EstIOPerRow <= 0 {
		t.Fatal("scan costs must be positive")
	}
}

func TestFilterSelectivityFromHistogram(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	// o_id < 500 is exactly 25% of a uniform 0..1999 key.
	scan := b.TableScan("orders", nil, nil)
	f := b.Filter(scan, expr.Lt(expr.C(0, "o_id"), expr.KInt(500)))
	p := estPlan(t, cat, f)
	if math.Abs(p.Root.EstRows-500) > 100 {
		t.Fatalf("filter EstRows = %v, want ~500", p.Root.EstRows)
	}
}

func TestEqSelectivityOnSkewedColumn(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	// l_oid = 0 is the Zipf head: far more frequent than average.
	scan := b.TableScan("lines", expr.Eq(expr.C(0, "l_oid"), expr.KInt(0)), nil)
	p := estPlan(t, cat, scan)
	if p.Root.EstRows < 100 {
		t.Fatalf("head-value estimate = %v, histogram should capture the skew", p.Root.EstRows)
	}
}

func TestJoinEstimate(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	j := b.HashJoinNode(plan.LogicalInnerJoin,
		b.TableScan("lines", nil, nil),
		b.TableScan("orders", nil, nil),
		[]int{0}, []int{0}, nil)
	p := estPlan(t, cat, j)
	// Every line matches exactly one order: true J = 10000. The
	// containment estimate should be in the right ballpark.
	if p.Root.EstRows < 2000 || p.Root.EstRows > 50000 {
		t.Fatalf("join EstRows = %v, want ~10000", p.Root.EstRows)
	}
}

func TestSemiAntiJoinEstimates(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	mk := func(kind plan.LogicalOp) float64 {
		j := b.HashJoinNode(kind,
			b.TableScan("orders", nil, nil),
			b.TableScan("lines", nil, nil),
			[]int{0}, []int{0}, nil)
		return estPlan(t, cat, j).Root.EstRows
	}
	semi := mk(plan.LogicalLeftSemiJoin)
	anti := mk(plan.LogicalLeftAntiSemiJoin)
	if semi > 2000 {
		t.Fatalf("semi join estimate %v exceeds outer cardinality", semi)
	}
	if math.Abs(semi+anti-2000) > 1 {
		t.Fatalf("semi (%v) + anti (%v) should partition the outer side", semi, anti)
	}
}

func TestNestedLoopsRebinds(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	outer := b.TableScan("orders", nil, nil)
	inner := b.SeekEq("lines", "ix_oid", []expr.Expr{expr.C(0, "o_id")}, nil)
	nl := b.NestedLoopsNode(plan.LogicalInnerJoin, outer, inner, nil)
	p := estPlan(t, cat, nl)
	if inner.EstRebinds != 2000 {
		t.Fatalf("inner EstRebinds = %v, want 2000", inner.EstRebinds)
	}
	if outer.EstRebinds != 1 {
		t.Fatalf("outer EstRebinds = %v, want 1", outer.EstRebinds)
	}
	// Inner total = rebinds × per-probe estimate ≈ 10000 total matches.
	if inner.EstRows < 1000 || inner.EstRows > 100000 {
		t.Fatalf("inner total EstRows = %v, want ~10000", inner.EstRows)
	}
	if p.Root.EstRows < 1000 {
		t.Fatalf("NL join EstRows = %v", p.Root.EstRows)
	}
}

func TestStackedNestedLoopsChainRebinds(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	innerDeep := b.SeekEq("lines", "ix_oid", []expr.Expr{expr.C(0, "o_id")}, nil)
	innerNL := b.NestedLoopsNode(plan.LogicalInnerJoin,
		b.SeekEq("orders", "pk", []expr.Expr{expr.C(0, "l_oid")}, nil),
		innerDeep, nil)
	outer := b.TableScan("lines", nil, nil)
	top := b.NestedLoopsNode(plan.LogicalInnerJoin, outer, innerNL, nil)
	estPlan(t, cat, top)
	// The deep inner seek rebinds once per (outer row × mid-level row):
	// 10000 lines × 1 matching order each.
	if innerDeep.EstRebinds != 10000 {
		t.Fatalf("deep inner rebinds = %v, want 10000 (chained through both NLs)", innerDeep.EstRebinds)
	}
	if innerNL.Children[0].EstRebinds != 10000 {
		t.Fatalf("mid seek rebinds = %v, want 10000", innerNL.Children[0].EstRebinds)
	}
}

func TestGroupByEstimate(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	agg := b.HashAgg(b.TableScan("orders", nil, nil), []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	p := estPlan(t, cat, agg)
	if math.Abs(p.Root.EstRows-100) > 20 {
		t.Fatalf("group estimate = %v, want ~100 (o_cust distinct)", p.Root.EstRows)
	}
	// Scalar aggregate → one row.
	agg2 := b.HashAgg(b.TableScan("orders", nil, nil), nil, []expr.AggSpec{{Kind: expr.CountStar}})
	if estPlan(t, cat, agg2).Root.EstRows != 1 {
		t.Fatal("scalar aggregate must estimate 1 row")
	}
}

func TestTopNEstimate(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	top := b.TopNSortNode(b.TableScan("orders", nil, nil), 10, []int{2}, []bool{true})
	if estPlan(t, cat, top).Root.EstRows != 10 {
		t.Fatal("TopN estimate must be N")
	}
}

func TestOutOfModelFunctionGuess(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	opaque := &expr.Func{Name: "f", Args: []expr.Expr{expr.C(0, "o_id")}, Fn: func(a []types.Value) types.Value { return types.Bool(a[0].I%97 == 0) }}
	scan := b.TableScan("orders", nil, expr.Eq(opaque, expr.KInt(1)))
	p := estPlan(t, cat, scan)
	if math.Abs(p.Root.EstRows-2000*guessFunc) > 1 {
		t.Fatalf("opaque predicate estimate = %v, want the %v guess", p.Root.EstRows, 2000*guessFunc)
	}
}

func TestNodeMultiplierInjection(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	scan := b.TableScan("orders", nil, nil)
	p := plan.Finalize(scan)
	e := NewEstimator(cat)
	e.NodeMultiplier = func(n *plan.Node) float64 {
		if n.Physical == plan.TableScan {
			return 0.01
		}
		return 1
	}
	e.Estimate(p)
	if math.Abs(p.Root.EstRows-20) > 1 {
		t.Fatalf("injected estimate = %v, want 20", p.Root.EstRows)
	}
}

func TestBatchModeCheaperPerRow(t *testing.T) {
	cat, _ := testDB(t)
	tbl := cat.MustTable("orders")
	tbl.AddIndex(&catalog.Index{Name: "cs", Kind: catalog.ColumnStore, RowGroups: 4})
	b := plan.NewBuilder(cat)
	rowScan := b.TableScan("orders", nil, nil)
	batchScan := b.ColumnstoreScan("orders", "cs", []int{0, 1}, nil)
	p1 := estPlan(t, cat, rowScan)
	p2 := estPlan(t, cat, batchScan)
	if p2.Root.EstCPUPerRow >= p1.Root.EstCPUPerRow {
		t.Fatalf("batch CPU %v not below row CPU %v", p2.Root.EstCPUPerRow, p1.Root.EstCPUPerRow)
	}
}

func TestSeekRangeEstimate(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	seek := b.Seek("orders", "pk",
		[]expr.Expr{expr.KInt(100)}, []expr.Expr{expr.KInt(299)}, true, true, nil)
	p := estPlan(t, cat, seek)
	if math.Abs(p.Root.EstRows-200) > 60 {
		t.Fatalf("range seek estimate = %v, want ~200", p.Root.EstRows)
	}
}

func TestConcatenationSums(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	c := b.Concat(b.TableScan("orders", nil, nil), b.TableScan("orders", nil, nil))
	if estPlan(t, cat, c).Root.EstRows != 4000 {
		t.Fatal("concat must sum children")
	}
}

func TestBitmapSelectivity(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	// Build side: orders filtered to ~5% of customers → bitmap on o_id
	// filters the lines probe scan.
	build := b.TableScan("orders", expr.Lt(expr.C(1, "o_cust"), expr.KInt(5)), nil)
	bm := b.BitmapNode(build, []int{0})
	probe := b.TableScan("lines", nil, nil)
	b.AttachBitmap(probe, bm, []int{0})
	j := b.HashJoinNode(plan.LogicalInnerJoin, probe, bm, []int{0}, []int{0}, nil)
	p := estPlan(t, cat, j)
	if probe.EstRows >= 10000 {
		t.Fatalf("bitmap probe scan estimate %v not reduced below table size", probe.EstRows)
	}
	_ = p
}

func TestCostsAllPositive(t *testing.T) {
	cat, _ := testDB(t)
	b := plan.NewBuilder(cat)
	inner := b.SeekEq("lines", "ix_oid", []expr.Expr{expr.C(0, "o_id")}, nil)
	nl := b.NestedLoopsNode(plan.LogicalInnerJoin, b.TableScan("orders", nil, nil), inner, nil)
	sorted := b.Sort(nl, []int{0}, nil)
	agg := b.HashAgg(sorted, []int{1}, []expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(4, "l_qty")}})
	ex := b.ExchangeNode(agg, plan.GatherStreams)
	p := estPlan(t, cat, ex)
	p.Walk(func(n *plan.Node) {
		if n.EstCPUPerRow <= 0 {
			t.Errorf("node %d (%v) has non-positive CPU cost", n.ID, n.Physical)
		}
		if n.EstRows < 0 || math.IsNaN(n.EstRows) {
			t.Errorf("node %d (%v) has bad EstRows %v", n.ID, n.Physical, n.EstRows)
		}
		if n.EstRebinds < 1 {
			t.Errorf("node %d has EstRebinds %v < 1", n.ID, n.EstRebinds)
		}
	})
}
