package opt

import (
	"math"
	"strings"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/plan"
)

// selPred estimates the selectivity of a predicate evaluated over node n's
// output. For joins, the predicate (a residual) sees the concatenated
// left ++ right row regardless of the join's output shape.
func (e *Estimator) selPred(n *plan.Node, provOf func(*plan.Node) []colRef, ex expr.Expr) float64 {
	if ex == nil {
		return 1
	}
	var pr []colRef
	switch n.Physical {
	case plan.HashJoin, plan.MergeJoin, plan.NestedLoops:
		pr = append(append([]colRef{}, provOf(n.Children[0])...), provOf(n.Children[1])...)
	default:
		pr = provOf(n)
	}
	return e.selOf(pr, ex)
}

// selOf estimates predicate selectivity against the given provenance using
// histograms where a column-vs-constant shape allows, independence across
// conjuncts, inclusion-exclusion across disjuncts, and the magic guesses
// real optimizers use everywhere else. Results are clamped to [minSel, 1].
func (e *Estimator) selOf(pr []colRef, ex expr.Expr) float64 {
	s := e.selOfRaw(pr, ex)
	if math.IsNaN(s) || s < minSel {
		return minSel
	}
	if s > 1 {
		return 1
	}
	return s
}

func (e *Estimator) selOfRaw(pr []colRef, ex expr.Expr) float64 {
	switch t := ex.(type) {
	case *expr.Cmp:
		return e.selCmp(pr, t)
	case *expr.Logic:
		if t.Op == expr.AndOp {
			s := 1.0
			for _, k := range t.Kids {
				s *= e.selOf(pr, k)
			}
			return s
		}
		s := 0.0
		for _, k := range t.Kids {
			ks := e.selOf(pr, k)
			s = s + ks - s*ks
		}
		return s
	case *expr.Not:
		return 1 - e.selOf(pr, t.E)
	case *expr.Like:
		if !strings.ContainsAny(t.Pattern, "%_") {
			return guessEq
		}
		if !strings.HasPrefix(t.Pattern, "%") {
			return guessLikePre
		}
		return guessLikeSub
	case *expr.In:
		if col, ok := t.E.(*expr.Col); ok {
			if h := e.histFor(pr, col.Idx); h != nil {
				s := 0.0
				for _, v := range t.Set {
					s += h.SelectivityEq(v)
				}
				return s
			}
		}
		return math.Min(float64(len(t.Set))*guessEq, 1)
	case *expr.IsNull:
		if col, ok := t.E.(*expr.Col); ok {
			if cs := e.statsFor(pr, col.Idx); cs != nil {
				return cs.NullFrac
			}
		}
		return guessEq
	case *expr.Func:
		return guessFunc
	case *expr.Const:
		if t.V.IsTrue() {
			return 1
		}
		return minSel
	}
	return guessIneq
}

func (e *Estimator) selCmp(pr []colRef, c *expr.Cmp) float64 {
	if containsFunc(c.L) || containsFunc(c.R) {
		return guessFunc
	}
	// Normalize to column-vs-constant when possible.
	col, cok := c.L.(*expr.Col)
	k, kok := c.R.(*expr.Const)
	op := c.Op
	if !cok || !kok {
		if col2, c2 := c.R.(*expr.Col); c2 {
			if k2, k2ok := c.L.(*expr.Const); k2ok {
				col, k, cok, kok = col2, k2, true, true
				op = flipCmp(op)
			} else if colL, cL := c.L.(*expr.Col); cL && op == expr.EQ {
				// column = column: 1/max(dv).
				dl := e.distinctFor(pr, colL.Idx)
				dr := e.distinctFor(pr, col2.Idx)
				return 1 / math.Max(math.Max(dl, dr), 1)
			}
		}
	}
	if cok && kok {
		if h := e.histFor(pr, col.Idx); h != nil {
			switch op {
			case expr.EQ:
				return h.SelectivityEq(k.V)
			case expr.NE:
				return 1 - h.SelectivityEq(k.V)
			case expr.LT:
				return h.SelectivityLT(k.V, false)
			case expr.LE:
				return h.SelectivityLT(k.V, true)
			case expr.GT:
				return 1 - h.SelectivityLT(k.V, true)
			case expr.GE:
				return 1 - h.SelectivityLT(k.V, false)
			}
		}
	}
	if op == expr.EQ {
		return guessEq
	}
	return guessIneq
}

func flipCmp(op expr.CmpOp) expr.CmpOp {
	switch op {
	case expr.LT:
		return expr.GT
	case expr.LE:
		return expr.GE
	case expr.GT:
		return expr.LT
	case expr.GE:
		return expr.LE
	default:
		return op
	}
}

func containsFunc(ex expr.Expr) bool {
	switch t := ex.(type) {
	case *expr.Func:
		return true
	case *expr.Cmp:
		return containsFunc(t.L) || containsFunc(t.R)
	case *expr.Logic:
		for _, k := range t.Kids {
			if containsFunc(k) {
				return true
			}
		}
	case *expr.Not:
		return containsFunc(t.E)
	case *expr.Arith:
		return containsFunc(t.L) || containsFunc(t.R)
	case *expr.Like:
		return containsFunc(t.E)
	case *expr.In:
		return containsFunc(t.E)
	case *expr.IsNull:
		return containsFunc(t.E)
	}
	return false
}

func (e *Estimator) statsFor(pr []colRef, idx int) *catalog.ColumnStats {
	if idx < 0 || idx >= len(pr) || pr[idx].tab == nil {
		return nil
	}
	t := pr[idx].tab
	if t.Stats == nil || pr[idx].col >= len(t.Stats.Cols) {
		return nil
	}
	return t.Stats.Cols[pr[idx].col]
}

func (e *Estimator) histFor(pr []colRef, idx int) *catalog.Histogram {
	if cs := e.statsFor(pr, idx); cs != nil {
		return cs.Hist
	}
	return nil
}

func (e *Estimator) distinctFor(pr []colRef, idx int) float64 {
	if cs := e.statsFor(pr, idx); cs != nil && cs.Distinct > 0 {
		return cs.Distinct
	}
	return 100 // arbitrary moderate guess
}
