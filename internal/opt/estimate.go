package opt

import (
	"math"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
	"lqs/internal/plan"
)

// Estimator attaches EstRows, EstRebinds, EstCPUPerRow, and EstIOPerRow to
// every node of a plan.
type Estimator struct {
	Cat *catalog.Catalog
	CM  *CostModel

	// NodeMultiplier, when non-nil, multiplies a node's estimated
	// per-execution cardinality — an error-injection hook experiments use
	// to create the gross misestimates the paper's Figures 4 and 13
	// illustrate. Return 1 for nodes to leave alone.
	NodeMultiplier func(n *plan.Node) float64
}

// NewEstimator returns an estimator over the catalog with default costs.
func NewEstimator(cat *catalog.Catalog) *Estimator {
	return &Estimator{Cat: cat, CM: DefaultCostModel()}
}

// Guessed selectivities for predicates the optimizer cannot model, the
// same magic-constant approach real optimizers fall back to.
const (
	guessEq      = 0.05
	guessIneq    = 0.30
	guessFunc    = 0.30 // out-of-model scalar function (§4.3)
	guessLikePre = 0.10
	guessLikeSub = 0.05
	minSel       = 1e-6
)

// colRef resolves an output ordinal to its source column, or nothing for
// computed values.
type colRef struct {
	tab *catalog.Table
	col int
}

// Estimate fills every node's estimate fields in place.
func (e *Estimator) Estimate(p *plan.Plan) {
	perExec := make(map[*plan.Node]float64)
	prov := make(map[*plan.Node][]colRef)
	var rows func(n *plan.Node) float64
	var provOf func(n *plan.Node) []colRef

	provOf = func(n *plan.Node) []colRef {
		if pr, ok := prov[n]; ok {
			return pr
		}
		var pr []colRef
		switch n.Physical {
		case plan.TableScan, plan.ClusteredIndexScan, plan.ClusteredIndexSeek,
			plan.IndexScan, plan.IndexSeek, plan.ColumnstoreIndexScan, plan.RIDLookup:
			t := e.Cat.MustTable(n.Table)
			if n.KeysOnly {
				ix := t.Index(n.Index)
				for _, kc := range ix.KeyCols {
					pr = append(pr, colRef{t, kc})
				}
				pr = append(pr, colRef{}) // the RID column
				break
			}
			pr = make([]colRef, len(t.Columns))
			for i := range pr {
				pr[i] = colRef{t, i}
			}
		case plan.ConstantScan:
			pr = make([]colRef, n.Width)
		case plan.ComputeScalar:
			pr = append(pr, provOf(n.Children[0])...)
			pr = append(pr, make([]colRef, len(n.Exprs))...)
		case plan.StreamAggregate, plan.HashAggregate:
			child := provOf(n.Children[0])
			for _, g := range n.GroupCols {
				pr = append(pr, child[g])
			}
			pr = append(pr, make([]colRef, len(n.Aggs))...)
		case plan.HashJoin, plan.MergeJoin, plan.NestedLoops:
			l := provOf(n.Children[0])
			r := provOf(n.Children[1])
			switch n.Logical {
			case plan.LogicalLeftSemiJoin, plan.LogicalLeftAntiSemiJoin:
				pr = l
			case plan.LogicalRightSemiJoin:
				pr = r
			default:
				pr = append(append([]colRef{}, l...), r...)
			}
		case plan.Concatenation:
			pr = provOf(n.Children[0])
		default:
			pr = provOf(n.Children[0])
		}
		prov[n] = pr
		return pr
	}

	// distinct returns the estimated distinct count of an output ordinal:
	// base-table statistics where provenance is known, a square-root guess
	// for computed columns.
	distinct := func(n *plan.Node, col int) float64 {
		pr := provOf(n)
		if col < len(pr) && pr[col].tab != nil {
			t := pr[col].tab
			if t.Stats != nil && pr[col].col < len(t.Stats.Cols) && t.Stats.Cols[pr[col].col] != nil {
				d := t.Stats.Cols[pr[col].col].Distinct
				if d > 0 {
					return d
				}
			}
		}
		nrows := perExec[n]
		return math.Max(math.Sqrt(math.Max(nrows, 1)), 1)
	}

	rows = func(n *plan.Node) float64 {
		if r, ok := perExec[n]; ok {
			return r
		}
		perExec[n] = 1 // provisional, guards accidental cycles
		var r float64
		switch n.Physical {
		case plan.TableScan, plan.ClusteredIndexScan, plan.IndexScan:
			t := e.Cat.MustTable(n.Table)
			r = float64(t.RowCount)
			r *= e.selPred(n, provOf, n.PushedPred)
			r *= e.bitmapSel(n, rows, provOf, distinct)
			r *= e.selPred(n, provOf, n.Pred)
		case plan.ColumnstoreIndexScan:
			t := e.Cat.MustTable(n.Table)
			r = float64(t.RowCount)
			r *= e.selPred(n, provOf, n.PushedPred)
			r *= e.bitmapSel(n, rows, provOf, distinct)
			r *= e.selPred(n, provOf, n.Pred)
		case plan.ClusteredIndexSeek, plan.IndexSeek:
			r = e.seekRows(n, provOf)
			r *= e.selPred(n, provOf, n.Pred)
		case plan.RIDLookup:
			r = rows(n.Children[0])
		case plan.ConstantScan:
			r = float64(len(n.ConstRows))
		case plan.Filter:
			r = rows(n.Children[0]) * e.selPred(n.Children[0], provOf, n.Pred)
		case plan.ComputeScalar, plan.Sort, plan.TableSpool, plan.Exchange,
			plan.SegmentOp, plan.BitmapCreate:
			r = rows(n.Children[0])
		case plan.TopNSort:
			r = math.Min(float64(n.TopN), rows(n.Children[0]))
		case plan.DistinctSort:
			r = e.groupEstimate(n, rows, distinct, n.SortCols)
		case plan.StreamAggregate, plan.HashAggregate:
			r = e.groupEstimate(n, rows, distinct, n.GroupCols)
		case plan.Concatenation:
			for _, c := range n.Children {
				r += rows(c)
			}
		case plan.HashJoin, plan.MergeJoin:
			l := rows(n.Children[0])
			rr := rows(n.Children[1])
			sel := 1.0
			for i := range n.JoinLeftCols {
				dl := distinct(n.Children[0], n.JoinLeftCols[i])
				dr := distinct(n.Children[1], n.JoinRightCols[i])
				sel /= math.Max(math.Max(dl, dr), 1)
			}
			j := l * rr * sel * e.selPred(n, provOf, n.Residual)
			r = joinCard(n.Logical, l, rr, j)
		case plan.NestedLoops:
			l := rows(n.Children[0])
			inner := rows(n.Children[1]) // per inner execution
			j := l * inner * e.selPred(n, provOf, n.Residual)
			r = joinCard(n.Logical, l, l*inner, j)
		default:
			r = rows(n.Children[0])
		}
		if r < 0 {
			r = 0
		}
		if e.NodeMultiplier != nil {
			if m := e.NodeMultiplier(n); m > 0 {
				r *= m
			}
		}
		perExec[n] = r
		return r
	}

	// Pass 1: per-execution cardinalities, bottom-up with memoization.
	p.Walk(func(n *plan.Node) { rows(n) })

	// Pass 2: rebind multipliers. The inner side of a nested-loops join
	// executes once per outer row, so total GetNext counts — the N_i of
	// the paper's Equation 2 — multiply down inner subtrees (chaining
	// across stacked NLs, §4.1's "apply this logic multiple times").
	var assign func(n *plan.Node, m float64)
	assign = func(n *plan.Node, m float64) {
		n.EstRebinds = m
		n.EstRows = perExec[n] * m
		if n.Physical == plan.NestedLoops {
			assign(n.Children[0], m)
			assign(n.Children[1], m*math.Max(perExec[n.Children[0]], 1))
			return
		}
		for _, c := range n.Children {
			assign(c, m)
		}
	}
	assign(p.Root, 1)

	// Pass 3: per-row CPU and IO costs, postorder so a parent's phase
	// weights can incorporate its children's per-row costs.
	var costRec func(n *plan.Node)
	costRec = func(n *plan.Node) {
		for _, c := range n.Children {
			costRec(c)
		}
		e.cost(n, perExec)
	}
	costRec(p.Root)
}

// joinCard maps an inner-join cardinality j to the join variant's output.
func joinCard(kind plan.LogicalOp, l, r, j float64) float64 {
	switch kind {
	case plan.LogicalLeftSemiJoin:
		return math.Min(l, j)
	case plan.LogicalLeftAntiSemiJoin:
		return math.Max(l-math.Min(l, j), 0)
	case plan.LogicalRightSemiJoin:
		return math.Min(r, j)
	case plan.LogicalLeftOuterJoin:
		return math.Max(j, l)
	case plan.LogicalRightOuterJoin:
		return math.Max(j, r)
	case plan.LogicalFullOuterJoin:
		return j + math.Max(l-j, 0) + math.Max(r-j, 0)
	default:
		return j
	}
}

// groupEstimate estimates group counts as the product of group-column
// distinct counts capped by input cardinality (the classic independence
// assumption; its overestimates on correlated columns are one of the error
// sources refinement fixes at runtime).
func (e *Estimator) groupEstimate(n *plan.Node, rows func(*plan.Node) float64, distinct func(*plan.Node, int) float64, cols []int) float64 {
	in := rows(n.Children[0])
	if len(cols) == 0 {
		n.EstDistinct = 1
		return 1
	}
	groups := 1.0
	for _, c := range cols {
		groups *= distinct(n.Children[0], c)
	}
	n.EstDistinct = math.Max(groups, 1)
	return math.Max(math.Min(groups, in), 1)
}

// seekRows estimates the rows one execution of a seek returns.
func (e *Estimator) seekRows(n *plan.Node, provOf func(*plan.Node) []colRef) float64 {
	t := e.Cat.MustTable(n.Table)
	ix := t.Index(n.Index)
	total := float64(t.RowCount)
	if total == 0 {
		return 0
	}
	if ix == nil || len(ix.KeyCols) == 0 {
		return total
	}
	keyCol := ix.KeyCols[0]
	var hist *catalog.Histogram
	var dv float64 = math.Sqrt(total)
	if t.Stats != nil && keyCol < len(t.Stats.Cols) && t.Stats.Cols[keyCol] != nil {
		hist = t.Stats.Cols[keyCol].Hist
		if t.Stats.Cols[keyCol].Distinct > 0 {
			dv = t.Stats.Cols[keyCol].Distinct
		}
	}
	if correlated(n.SeekLo) || correlated(n.SeekHi) {
		// Correlated seek (inner side of NL): one key value per probe.
		return math.Max(total/dv, minSel)
	}
	loV, loOK := constVal(n.SeekLo)
	hiV, hiOK := constVal(n.SeekHi)
	if hist != nil {
		switch {
		case loOK && hiOK:
			return total * hist.SelectivityRange(loV, hiV, n.SeekLoInc, n.SeekHiInc)
		case loOK:
			return total * (1 - hist.SelectivityLT(loV, !n.SeekLoInc))
		case hiOK:
			return total * hist.SelectivityLT(hiV, n.SeekHiInc)
		}
	}
	return total * guessIneq
}

func correlated(keys []expr.Expr) bool {
	for _, k := range keys {
		if len(expr.Columns(k, nil)) > 0 {
			return true
		}
	}
	return false
}

func constVal(keys []expr.Expr) (v types.Value, ok bool) {
	if len(keys) == 0 {
		return types.Value{}, false
	}
	if c, isConst := keys[0].(*expr.Const); isConst {
		return c.V, true
	}
	return types.Value{}, false
}

// bitmapSel estimates the selectivity of a bitmap probe pushed into a scan
// as domain containment: the fraction of the probe side's key domain
// present on the build side.
func (e *Estimator) bitmapSel(n *plan.Node, rows func(*plan.Node) float64, provOf func(*plan.Node) []colRef, distinct func(*plan.Node, int) float64) float64 {
	if n.BitmapSource == nil {
		return 1
	}
	src := n.BitmapSource
	buildRows := rows(src) // ensure the build subtree is estimated
	dvBuild := 1.0
	dvProbe := 1.0
	for i, kc := range src.BitmapKeyCols {
		// Filters below the bitmap reduce the surviving key domain: cap
		// per-column distincts by the build's estimated cardinality.
		dvBuild *= math.Min(distinct(src.Children[0], kc), math.Max(buildRows, 1))
		if i < len(n.BitmapProbeCols) {
			dvProbe *= distinct(n, n.BitmapProbeCols[i])
		}
	}
	dvBuild = math.Min(dvBuild, math.Max(buildRows, 1))
	if dvProbe <= 0 {
		return 1
	}
	return math.Max(math.Min(dvBuild/dvProbe, 1), minSel)
}
