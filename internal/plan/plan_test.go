package plan

import (
	"strings"
	"testing"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
)

func testCatalog() *catalog.Catalog {
	cat := catalog.NewCatalog()
	a := catalog.NewTable("a",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "v", Kind: types.KindInt},
	)
	a.AddIndex(&catalog.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	cat.Add(a)
	bTab := catalog.NewTable("b",
		catalog.Column{Name: "id", Kind: types.KindInt},
		catalog.Column{Name: "a_id", Kind: types.KindInt},
		catalog.Column{Name: "x", Kind: types.KindFloat},
	)
	bTab.AddIndex(&catalog.Index{Name: "ix_aid", KeyCols: []int{1}})
	cat.Add(bTab)
	return cat
}

func TestBuilderWidths(t *testing.T) {
	b := NewBuilder(testCatalog())
	scanA := b.TableScan("a", nil, nil)
	scanB := b.TableScan("b", nil, nil)
	if scanA.Width != 2 || scanB.Width != 3 {
		t.Fatalf("scan widths %d/%d", scanA.Width, scanB.Width)
	}
	j := b.HashJoinNode(LogicalInnerJoin, scanA, scanB, []int{0}, []int{1}, nil)
	if j.Width != 5 {
		t.Fatalf("inner join width %d", j.Width)
	}
	semi := b.HashJoinNode(LogicalLeftSemiJoin, scanA, scanB, []int{0}, []int{1}, nil)
	if semi.Width != 2 {
		t.Fatalf("semi join width %d", semi.Width)
	}
	cs := b.ComputeScalar(j, expr.Plus(expr.C(1, "v"), expr.KInt(1)))
	if cs.Width != 6 {
		t.Fatalf("compute scalar width %d", cs.Width)
	}
	agg := b.HashAgg(cs, []int{0, 1}, []expr.AggSpec{{Kind: expr.CountStar}})
	if agg.Width != 3 {
		t.Fatalf("agg width %d", agg.Width)
	}
}

func TestFinalizePreorderIDs(t *testing.T) {
	b := NewBuilder(testCatalog())
	scanA := b.TableScan("a", nil, nil)
	scanB := b.TableScan("b", nil, nil)
	sorted := b.Sort(scanB, []int{1}, nil)
	j := b.MergeJoinNode(LogicalInnerJoin, scanA, sorted, []int{0}, []int{1}, nil)
	p := Finalize(j)
	if p.Root.ID != 0 {
		t.Fatal("root must be node 0")
	}
	// Preorder: join(0), scanA(1), sort(2), scanB(3).
	if scanA.ID != 1 || sorted.ID != 2 || scanB.ID != 3 {
		t.Fatalf("preorder ids: scanA=%d sort=%d scanB=%d", scanA.ID, sorted.ID, scanB.ID)
	}
	if p.Node(2) != sorted || p.Node(99) != nil {
		t.Fatal("Node lookup wrong")
	}
	if p.Parent(3) != sorted || p.Parent(0) != nil {
		t.Fatal("Parent lookup wrong")
	}
	n := 0
	p.Walk(func(*Node) { n++ })
	if n != 4 {
		t.Fatalf("Walk visited %d", n)
	}
}

func TestBlockingClassification(t *testing.T) {
	b := NewBuilder(testCatalog())
	scan := b.TableScan("a", nil, nil)
	if scan.IsBlocking() || scan.IsSemiBlocking() {
		t.Error("scan misclassified")
	}
	if !b.Sort(scan, []int{0}, nil).IsBlocking() {
		t.Error("sort must be blocking")
	}
	if !b.HashAgg(scan, []int{0}, nil).IsBlocking() {
		t.Error("hash agg must be blocking")
	}
	if b.StreamAgg(scan, []int{0}, nil).IsBlocking() {
		t.Error("stream agg is pipelined")
	}
	if !b.Spool(scan, true).IsBlocking() || b.Spool(scan, false).IsBlocking() {
		t.Error("spool blocking depends on eagerness")
	}
	if !b.ExchangeNode(scan, GatherStreams).IsSemiBlocking() {
		t.Error("exchange must be semi-blocking")
	}
	inner := b.SeekEq("b", "ix_aid", []expr.Expr{expr.C(0, "a.id")}, nil)
	nl := b.NestedLoopsNode(LogicalInnerJoin, scan, inner, nil)
	if !nl.IsSemiBlocking() {
		t.Error("nested loops must be semi-blocking")
	}
}

func TestSeekKindFromIndex(t *testing.T) {
	b := NewBuilder(testCatalog())
	s := b.SeekEq("a", "pk", []expr.Expr{expr.KInt(5)}, nil)
	if s.Physical != ClusteredIndexSeek || s.Logical != LogicalClusteredIndexSeek {
		t.Errorf("pk seek classified as %v/%v", s.Physical, s.Logical)
	}
	s2 := b.SeekEq("b", "ix_aid", []expr.Expr{expr.KInt(5)}, nil)
	if s2.Physical != IndexSeek {
		t.Errorf("secondary seek classified as %v", s2.Physical)
	}
}

func TestBitmapWiring(t *testing.T) {
	b := NewBuilder(testCatalog())
	build := b.TableScan("a", nil, nil)
	bm := b.BitmapNode(build, []int{0})
	probe := b.TableScan("b", nil, nil)
	b.AttachBitmap(probe, bm, []int{1})
	if !probe.HasStoragePred() {
		t.Error("bitmap probe scan must report a storage predicate")
	}
	if probe.BitmapSource != bm || probe.BitmapProbeCols[0] != 1 {
		t.Error("bitmap wiring wrong")
	}
	plain := b.TableScan("b", nil, nil)
	if plain.HasStoragePred() {
		t.Error("plain scan misreports storage predicate")
	}
	pushed := b.TableScan("b", nil, expr.Gt(expr.C(2, "x"), expr.KInt(0)))
	if !pushed.HasStoragePred() {
		t.Error("pushed predicate scan must report storage predicate")
	}
}

func TestJoinKindValidation(t *testing.T) {
	b := NewBuilder(testCatalog())
	defer func() {
		if recover() == nil {
			t.Fatal("non-join logical kind accepted")
		}
	}()
	b.HashJoinNode(LogicalFilter, b.TableScan("a", nil, nil), b.TableScan("b", nil, nil), nil, nil, nil)
}

func TestPlanString(t *testing.T) {
	b := NewBuilder(testCatalog())
	j := b.HashJoinNode(LogicalInnerJoin,
		b.TableScan("b", nil, nil),
		b.TableScan("a", expr.Gt(expr.C(1, "v"), expr.KInt(10)), nil),
		[]int{1}, []int{0}, nil)
	p := Finalize(j)
	s := p.String()
	for _, want := range []string{"Hash Join", "Inner Join", "Table Scan", "pred=(v > 10)"} {
		if !strings.Contains(s, want) {
			t.Errorf("plan string missing %q:\n%s", want, s)
		}
	}
}

func TestLogicalOpNamesAndIsJoin(t *testing.T) {
	if LogicalInnerJoin.String() != "Inner Join" || LogicalEagerSpool.String() != "Eager Spool" {
		t.Error("logical names wrong")
	}
	if !LogicalFullOuterJoin.IsJoin() || LogicalSort.IsJoin() {
		t.Error("IsJoin misclassifies")
	}
	if TableScan.String() != "Table Scan" || Exchange.String() != "Parallelism" {
		t.Error("physical names wrong")
	}
}

func TestConstantScan(t *testing.T) {
	b := NewBuilder(testCatalog())
	n := b.ConstantScanRows([]types.Row{{types.Int(1), types.Str("x")}})
	if n.Width != 2 || len(n.ConstRows) != 1 {
		t.Error("constant scan wrong")
	}
}

func TestSeekKeysOnlyWidth(t *testing.T) {
	b := NewBuilder(testCatalog())
	s := b.SeekKeysOnly("b", "ix_aid", []expr.Expr{expr.KInt(1)}, []expr.Expr{expr.KInt(1)}, true, true)
	if !s.KeysOnly || s.Width != 2 {
		t.Fatalf("keys-only seek: KeysOnly=%v width=%d", s.KeysOnly, s.Width)
	}
	rl := b.RIDLookup(s, "b")
	if rl.Width != 3 {
		t.Fatalf("rid lookup width %d", rl.Width)
	}
}

func TestConcatNoChildrenPanics(t *testing.T) {
	b := NewBuilder(testCatalog())
	defer func() {
		if recover() == nil {
			t.Fatal("Concat() did not panic")
		}
	}()
	b.Concat()
}

func TestAttachBitmapValidation(t *testing.T) {
	b := NewBuilder(testCatalog())
	scan := b.TableScan("a", nil, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("AttachBitmap accepted a non-bitmap source")
		}
	}()
	b.AttachBitmap(scan, b.TableScan("b", nil, nil), []int{0})
}

func TestFinalizeNilNodePanics(t *testing.T) {
	b := NewBuilder(testCatalog())
	n := b.TableScan("a", nil, nil)
	n.Children = append(n.Children, nil)
	defer func() {
		if recover() == nil {
			t.Fatal("Finalize accepted a nil child")
		}
	}()
	Finalize(n)
}

func TestExchangeKindsAndLogical(t *testing.T) {
	b := NewBuilder(testCatalog())
	scan := b.TableScan("a", nil, nil)
	if b.ExchangeNode(scan, RepartitionStreams).Logical != LogicalRepartitionStreams {
		t.Error("repartition logical wrong")
	}
	if b.ExchangeNode(scan, DistributeStreams).Logical != LogicalDistributeStreams {
		t.Error("distribute logical wrong")
	}
	if b.ExchangeNode(scan, GatherStreams).Logical != LogicalGatherStreams {
		t.Error("gather logical wrong")
	}
}

func TestPartialAggLogical(t *testing.T) {
	b := NewBuilder(testCatalog())
	pa := b.PartialAgg(b.TableScan("a", nil, nil), []int{0}, nil)
	if pa.Logical != LogicalPartialAggregate || pa.Physical != HashAggregate {
		t.Errorf("partial agg classification: %v/%v", pa.Physical, pa.Logical)
	}
}

func TestKindStringsExhaustive(t *testing.T) {
	for p := TableScan; p <= Exchange; p++ {
		if s := p.String(); s == "" || s[0] == 'P' && s != "Parallelism" {
			t.Errorf("physical %d renders %q", p, s)
		}
	}
	for l := LogicalUnknown; l <= LogicalRIDLookup; l++ {
		if l.String() == "" {
			t.Errorf("logical %d renders empty", l)
		}
	}
}
