// Package plan defines physical query plan trees: the artifact the
// optimizer produces, the execution engine runs, and the client-side
// progress estimator consumes (together with the optimizer's estimated
// cardinalities and per-row CPU/IO costs attached to every node — the
// "showplan" information the paper's §2.2 client reads).
package plan

import (
	"fmt"
	"strings"

	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
)

// PhysicalOp enumerates physical operator types.
type PhysicalOp uint8

// Physical operators.
const (
	TableScan PhysicalOp = iota
	ClusteredIndexScan
	ClusteredIndexSeek
	IndexScan
	IndexSeek
	RIDLookup
	ConstantScan
	ColumnstoreIndexScan
	Filter
	ComputeScalar
	Concatenation
	Sort
	TopNSort
	DistinctSort
	StreamAggregate
	HashAggregate
	HashJoin
	MergeJoin
	NestedLoops
	TableSpool
	BitmapCreate
	SegmentOp
	Exchange
)

var physicalNames = [...]string{
	"Table Scan", "Clustered Index Scan", "Clustered Index Seek", "Index Scan",
	"Index Seek", "RID Lookup", "Constant Scan", "Columnstore Index Scan",
	"Filter", "Compute Scalar", "Concatenation", "Sort", "Top N Sort",
	"Distinct Sort", "Stream Aggregate", "Hash Aggregate", "Hash Join",
	"Merge Join", "Nested Loops", "Table Spool", "Bitmap Create", "Segment",
	"Parallelism",
}

// String returns the showplan display name.
func (p PhysicalOp) String() string {
	if int(p) < len(physicalNames) {
		return physicalNames[p]
	}
	return fmt.Sprintf("PhysicalOp(%d)", uint8(p))
}

// LogicalOp enumerates the logical operator labels of Appendix A's
// cardinality-bounding table; the bounding rules dispatch on these.
type LogicalOp uint8

// Logical operators (one per row of the paper's Table 1, plus LeftOuterJoin
// which the table's join row family covers implicitly).
const (
	LogicalUnknown LogicalOp = iota
	LogicalInnerJoin
	LogicalLeftOuterJoin
	LogicalLeftSemiJoin
	LogicalLeftAntiSemiJoin
	LogicalRightOuterJoin
	LogicalRightSemiJoin
	LogicalFullOuterJoin
	LogicalConcatenation
	LogicalClusteredIndexSeek
	LogicalIndexSeek
	LogicalIndexScan
	LogicalClusteredIndexScan
	LogicalTableScan
	LogicalConstantScan
	LogicalColumnstoreScan
	LogicalEagerSpool
	LogicalLazySpool
	LogicalFilter
	LogicalDistributeStreams
	LogicalGatherStreams
	LogicalRepartitionStreams
	LogicalSegment
	LogicalDistinctSort
	LogicalSort
	LogicalTopNSort
	LogicalBitmapCreate
	LogicalAggregate
	LogicalPartialAggregate
	LogicalComputeScalar
	LogicalRIDLookup
)

var logicalNames = [...]string{
	"Unknown", "Inner Join", "Left Outer Join", "Left Semi Join",
	"Left Anti Semi Join", "Right Outer Join", "Right Semi Join",
	"Full Outer Join", "Concatenation", "Clustered Index Seek", "Index Seek",
	"Index Scan", "Clustered Index Scan", "Table Scan", "Constant Scan",
	"Columnstore Index Scan", "Eager Spool", "Lazy Spool", "Filter",
	"Distribute Streams", "Gather Streams", "Repartition Streams", "Segment",
	"Distinct Sort", "Sort", "Top N Sort", "Bitmap Create", "Aggregate",
	"Partial Aggregate", "Compute Scalar", "RID Lookup",
}

// String returns the logical operator's display name.
func (l LogicalOp) String() string {
	if int(l) < len(logicalNames) {
		return logicalNames[l]
	}
	return fmt.Sprintf("LogicalOp(%d)", uint8(l))
}

// IsJoin reports whether the logical operator is a join variant.
func (l LogicalOp) IsJoin() bool {
	switch l {
	case LogicalInnerJoin, LogicalLeftOuterJoin, LogicalLeftSemiJoin,
		LogicalLeftAntiSemiJoin, LogicalRightOuterJoin, LogicalRightSemiJoin,
		LogicalFullOuterJoin:
		return true
	}
	return false
}

// ExchangeKind distinguishes the Parallelism operator variants.
type ExchangeKind uint8

// Exchange variants.
const (
	GatherStreams ExchangeKind = iota
	RepartitionStreams
	DistributeStreams
)

// Node is one operator in a physical plan tree. Fields beyond Children are
// a parameter union: each physical operator reads the subset that applies
// to it (the same way a showplan node carries op-specific attributes).
type Node struct {
	ID       int
	Physical PhysicalOp
	Logical  LogicalOp
	Children []*Node

	// Width is the output arity (column count) of this operator.
	Width int

	// Optimizer estimates: the client-side progress estimator consumes
	// exactly these (paper §2.2 "estimated cardinalities as well as CPU
	// and I/O cost estimates").
	EstRows      float64 // estimated TOTAL rows output over the whole query (N_i)
	EstCPUPerRow float64 // estimated CPU nanoseconds per row output
	EstIOPerRow  float64 // estimated I/O nanoseconds per row output
	EstRebinds   float64 // estimated executions for nested-loop inner subtrees (1 elsewhere)
	// EstOutCPUPerRow is the output-phase per-row cost of a blocking
	// operator (its input phase dominates EstCPUPerRow); the §4.6 weight
	// scheme uses it for the pipeline the output phase feeds.
	EstOutCPUPerRow float64
	// EstDistinct, on aggregate/distinct nodes, is the optimizer's
	// distinct-value-product estimate before capping by the input
	// cardinality; cross-pipeline propagation (§7 future work) needs the
	// uncapped value to re-cap against refined inputs.
	EstDistinct float64
	// EstInternalRows, on sort nodes, is the predicted external-merge work
	// of a spill, expressed in input-row cost equivalents; the §7
	// internal-counters estimator adds it as a third progress phase.
	EstInternalRows float64
	// EstOutWeight, on blocking nodes, is the cost of emitting one output
	// row relative to consuming one input row (including producing it);
	// the §7 cost-weighted phase model uses it to keep phase progress
	// proportional to time.
	EstOutWeight float64

	// Access path parameters.
	Table string
	Index string
	// Pred is a residual predicate evaluated by the operator itself.
	Pred expr.Expr
	// PushedPred is evaluated inside the storage engine during the scan
	// (paper §4.3): rows failing it are never output by the scan, and the
	// optimizer's estimate of the scan output becomes unreliable.
	PushedPred expr.Expr
	// BitmapSource, when set on a scan, filters rows against the bitmap
	// produced by that BitmapCreate node (a semi-join reduction pushed
	// into the scan, §4.3).
	BitmapSource *Node
	// BitmapProbeCols are the scan-output ordinals hashed against the bitmap.
	BitmapProbeCols []int
	// BitmapKeyCols, on a BitmapCreate node, are the child-output ordinals
	// whose values populate the bitmap.
	BitmapKeyCols []int

	// Seek parameters: SeekLo/SeekHi bound the index key range. They are
	// evaluated against the *bind row* — the empty row for plain seeks, or
	// the current outer row for seeks on the inner side of a nested-loops
	// join (correlated parameters).
	SeekLo, SeekHi       []expr.Expr
	SeekLoInc, SeekHiInc bool
	// KeysOnly makes a seek output (key columns..., RID) instead of the
	// covered full row; pair with a RIDLookup parent (bookmark lookup).
	KeysOnly bool

	// Sort / aggregate parameters.
	SortCols  []int
	SortDesc  []bool
	GroupCols []int
	Aggs      []expr.AggSpec
	TopN      int64

	// Join parameters: equijoin key ordinals into each child's output, and
	// an optional residual over the concatenated (left ++ right) row.
	JoinLeftCols  []int
	JoinRightCols []int
	Residual      expr.Expr

	// ComputeScalar appends these expressions to the input row.
	Exprs []expr.Expr

	// Spool and exchange parameters.
	SpoolEager   bool
	ExchangeKind ExchangeKind
	// ExchangeStartup is how many child rows the exchange's producer side
	// buffers before the first row is handed to the consumer; ExchangeAhead
	// is how many further child rows it pulls per row emitted. Zero means
	// the executor defaults. These model the producer-runs-ahead buffering
	// of the Parallelism operator (paper §4.4, Fig. 8).
	ExchangeStartup int
	ExchangeAhead   int
	// ExchangeDOP is the degree of parallelism a GatherStreams exchange
	// runs its subtree at (0/1 = the serial producer-runs-ahead
	// simulation). The executor only honors it when the query's own DOP
	// allows and the subtree is range-partitionable.
	ExchangeDOP int
	// ExchangeHashCols, on a RepartitionStreams exchange, are the
	// child-output ordinals rows are hash-distributed on; rows with equal
	// hash keys land on the same consumer thread, which is what makes a
	// per-thread aggregate above the repartition exact.
	ExchangeHashCols []int
	// NLBuffer is how many outer rows a nested-loops join batches before
	// probing the inner side (0 = executor default). Large values
	// reproduce §4.4's "all outer rows consumed and buffered before any
	// inner tuples are accessed".
	NLBuffer int

	// Constant scan rows.
	ConstRows []types.Row

	// Batch mode (columnstore) execution, §4.7.
	BatchMode bool
	// AccessedCols are the columns a columnstore scan must read.
	AccessedCols []int
}

// Plan is a finalized plan: a root plus nodes indexed by ID.
type Plan struct {
	Root  *Node
	Nodes []*Node
}

// Finalize assigns node IDs in preorder (mirroring showplan node ids,
// root = 0) and returns the Plan. It panics on structural errors — plans
// are built by trusted builders, so a malformed tree is a bug.
func Finalize(root *Node) *Plan {
	p := &Plan{Root: root}
	var walk func(n *Node)
	walk = func(n *Node) {
		if n == nil {
			panic("plan: nil node in tree")
		}
		n.ID = len(p.Nodes)
		p.Nodes = append(p.Nodes, n)
		for _, c := range n.Children {
			walk(c)
		}
	}
	walk(root)
	return p
}

// Node returns the node with the given ID, or nil.
func (p *Plan) Node(id int) *Node {
	if id < 0 || id >= len(p.Nodes) {
		return nil
	}
	return p.Nodes[id]
}

// Walk visits every node preorder.
func (p *Plan) Walk(f func(n *Node)) {
	var rec func(n *Node)
	rec = func(n *Node) {
		f(n)
		for _, c := range n.Children {
			rec(c)
		}
	}
	rec(p.Root)
}

// Parent returns the parent of node id, or nil for the root. O(n); used by
// analysis code, not the execution hot path.
func (p *Plan) Parent(id int) *Node {
	for _, n := range p.Nodes {
		for _, c := range n.Children {
			if c.ID == id {
				return n
			}
		}
	}
	return nil
}

// IsBlocking reports whether the operator is stop-and-go: it must consume
// (all of) its input before producing output (paper §4.5). For HashJoin
// only the build side is blocking, which pipeline decomposition handles
// separately; the join node itself streams probe rows.
func (n *Node) IsBlocking() bool {
	switch n.Physical {
	case Sort, TopNSort, DistinctSort, HashAggregate:
		return true
	case TableSpool:
		return n.SpoolEager
	}
	return false
}

// IsSemiBlocking reports whether the operator buffers its input without
// being fully stop-and-go (paper §4.4): exchanges, and nested loops with
// outer-side batching (modelled on every NL here).
func (n *Node) IsSemiBlocking() bool {
	switch n.Physical {
	case Exchange, NestedLoops:
		return true
	}
	return false
}

// IsLeaf reports whether the operator reads from storage or constants
// rather than from children.
func (n *Node) IsLeaf() bool { return len(n.Children) == 0 }

// IsScan reports whether the operator is a storage-engine scan/seek.
func (n *Node) IsScan() bool {
	switch n.Physical {
	case TableScan, ClusteredIndexScan, ClusteredIndexSeek, IndexScan,
		IndexSeek, ColumnstoreIndexScan:
		return true
	}
	return false
}

// HasStoragePred reports whether rows are filtered inside the storage
// engine during this scan (pushed predicate or bitmap probe, §4.3).
func (n *Node) HasStoragePred() bool {
	return n.IsScan() && (n.PushedPred != nil || n.BitmapSource != nil)
}

// String renders the plan subtree as an indented text showplan.
func (n *Node) String() string {
	var sb strings.Builder
	n.format(&sb, 0)
	return sb.String()
}

func (n *Node) format(sb *strings.Builder, depth int) {
	n.formatLine(sb, depth)
	sb.WriteByte('\n')
	for _, c := range n.Children {
		c.format(sb, depth+1)
	}
}

// formatLine renders one node's showplan line without the trailing newline,
// so annotating renderers (ExplainWithProfile) can append to it.
func (n *Node) formatLine(sb *strings.Builder, depth int) {
	sb.WriteString(strings.Repeat("  ", depth))
	fmt.Fprintf(sb, "[%d] %s", n.ID, n.Physical)
	if n.Logical != LogicalUnknown && n.Logical.String() != n.Physical.String() {
		fmt.Fprintf(sb, " (%s)", n.Logical)
	}
	if n.Table != "" {
		fmt.Fprintf(sb, " %s", n.Table)
		if n.Index != "" {
			fmt.Fprintf(sb, ".%s", n.Index)
		}
	}
	if n.BatchMode {
		sb.WriteString(" [batch]")
	}
	fmt.Fprintf(sb, "  est=%.1f", n.EstRows)
	if n.Pred != nil {
		fmt.Fprintf(sb, " pred=%s", n.Pred)
	}
	if n.PushedPred != nil {
		fmt.Fprintf(sb, " pushed=%s", n.PushedPred)
	}
}

// String renders the whole plan.
func (p *Plan) String() string { return p.Root.String() }
