package plan_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

// runQ1 builds and runs TPC-H Q1 to completion, returning the finalized
// plan and the final DMV snapshot. Workload generation is a pure function
// of its seed, so the annotated EXPLAIN output is deterministic.
func runQ1(t *testing.T) (*plan.Plan, *dmv.Snapshot) {
	t.Helper()
	w := workload.TPCH(1, workload.TPCHRowstore)
	var wq workload.Query
	for _, q := range w.Queries {
		if q.Name == "Q1" {
			wq = q
			break
		}
	}
	if wq.Build == nil {
		t.Fatal("TPC-H workload has no Q1")
	}
	p := plan.Finalize(wq.Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	w.DB.ColdStart()
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), sim.NewClock())
	if _, err := query.Run(); err != nil {
		t.Fatalf("Q1 failed: %v", err)
	}
	return p, dmv.Capture(query)
}

func TestExplainWithProfileGolden(t *testing.T) {
	p, snap := runQ1(t)
	got := plan.ExplainWithProfile(p, snap.NodeProfiles())

	goldenPath := filepath.Join("testdata", "explain_profile_q1.golden")
	if os.Getenv("UPDATE_GOLDEN") != "" {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with UPDATE_GOLDEN=1 to create): %v", err)
	}
	if got != string(want) {
		t.Fatalf("annotated EXPLAIN drifted from golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

func TestExplainWithProfileAnnotations(t *testing.T) {
	p, snap := runQ1(t)
	out := plan.ExplainWithProfile(p, snap.NodeProfiles())
	if !strings.Contains(out, "actual=") {
		t.Fatal("no actual-rows annotations")
	}
	if !strings.Contains(out, "[done]") {
		t.Fatal("completed query's operators not marked [done]")
	}
	if strings.Contains(out, "[open]") || strings.Contains(out, "[pending]") {
		t.Fatal("completed query shows unfinished operators")
	}
	// Every plan line carries an annotation.
	for _, line := range strings.Split(strings.TrimRight(out, "\n"), "\n") {
		if !strings.Contains(line, "actual=") {
			t.Fatalf("unannotated line: %q", line)
		}
	}
}

func TestExplainWithProfileDegradesWithoutProfiles(t *testing.T) {
	p, _ := runQ1(t)
	// A nil profile slice (stale snapshot from another plan shape) renders
	// the plain showplan.
	if got, want := plan.ExplainWithProfile(p, nil), p.String(); got != want {
		t.Fatalf("nil-profile render diverged from Plan.String:\n%s\nvs\n%s", got, want)
	}
	// A short slice annotates only the nodes it covers.
	short := plan.ExplainWithProfile(p, make([]plan.NodeProfile, 1))
	if !strings.Contains(short, "actual=0") {
		t.Fatal("short profile slice annotated nothing")
	}
}
