package plan

import (
	"testing"

	"lqs/internal/engine/expr"
)

// countGathers walks the tree counting inserted gather exchanges.
func countGathers(n *Node) int {
	c := 0
	if n.Physical == Exchange && n.ExchangeKind == GatherStreams {
		c++
	}
	for _, ch := range n.Children {
		c += countGathers(ch)
	}
	return c
}

// TestParallelizeInsertsGatherOverScanChain: a Filter/ComputeScalar chain
// over a scan is one maximal zone — one gather above the chain, nothing
// inserted inside it, DOP recorded on the exchange.
func TestParallelizeInsertsGatherOverScanChain(t *testing.T) {
	b := NewBuilder(testCatalog())
	chain := b.ComputeScalar(
		b.Filter(b.TableScan("b", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(10))),
		expr.Plus(expr.C(0, "id"), expr.KInt(1)))
	root := Parallelize(b.Sort(chain, []int{0}, nil), 4)
	if root.Physical != Sort {
		t.Fatalf("root is %v, want Sort", root.Physical)
	}
	x := root.Children[0]
	if x.Physical != Exchange || x.ExchangeKind != GatherStreams || x.ExchangeDOP != 4 {
		t.Fatalf("sort child is %v (kind %v, dop %d), want gather dop 4", x.Physical, x.ExchangeKind, x.ExchangeDOP)
	}
	if x.Children[0].Physical != ComputeScalar || countGathers(x) != 1 {
		t.Fatalf("zone shape wrong: child %v, %d gathers", x.Children[0].Physical, countGathers(x))
	}
	if x.Width != x.Children[0].Width {
		t.Fatalf("gather width %d != child width %d", x.Width, x.Children[0].Width)
	}
}

// TestParallelizeWholeTreeIsZone: when the entire plan is one partitionable
// chain, the gather becomes the new root.
func TestParallelizeWholeTreeIsZone(t *testing.T) {
	b := NewBuilder(testCatalog())
	root := Parallelize(b.TableScan("a", nil, nil), 2)
	if root.Physical != Exchange || root.ExchangeKind != GatherStreams {
		t.Fatalf("root is %v, want gather", root.Physical)
	}
}

// TestParallelizeDOPOneIsIdentity: dop <= 1 must return the tree untouched.
func TestParallelizeDOPOneIsIdentity(t *testing.T) {
	b := NewBuilder(testCatalog())
	orig := b.Sort(b.TableScan("a", nil, nil), []int{0}, nil)
	if got := Parallelize(orig, 1); got != orig || countGathers(got) != 0 {
		t.Fatal("dop=1 rewrote the tree")
	}
	if got := Parallelize(orig, 0); got != orig || countGathers(got) != 0 {
		t.Fatal("dop=0 rewrote the tree")
	}
}

// TestParallelizeBarsNestedLoopsInner: the inner side of a nested-loops
// join is rewound per outer row; a gather cannot re-run its workers, so no
// exchange may appear there. The outer side stays eligible.
func TestParallelizeBarsNestedLoopsInner(t *testing.T) {
	b := NewBuilder(testCatalog())
	outer := b.TableScan("a", nil, nil)
	inner := b.TableScan("b", nil, nil)
	root := Parallelize(b.NestedLoopsNode(LogicalInnerJoin, outer, inner, nil), 4)
	if root.Physical != NestedLoops {
		t.Fatalf("root is %v", root.Physical)
	}
	if root.Children[0].Physical != Exchange {
		t.Fatal("outer side not parallelized")
	}
	if countGathers(root.Children[1]) != 0 {
		t.Fatal("gather inserted on nested-loops inner side")
	}
}

// TestParallelizeBarsUnderExistingExchange: subtrees under a pre-existing
// exchange already have exchange semantics; the rewrite must not nest
// gathers inside them.
func TestParallelizeBarsUnderExistingExchange(t *testing.T) {
	b := NewBuilder(testCatalog())
	root := Parallelize(b.Sort(b.ExchangeNode(b.TableScan("a", nil, nil), GatherStreams), []int{0}, nil), 4)
	x := root.Children[0]
	if x.Physical != Exchange || x.ExchangeDOP != 0 {
		t.Fatalf("pre-existing exchange altered: %+v", x)
	}
	if countGathers(x) != 1 { // the pre-existing one only
		t.Fatal("gather nested under existing exchange")
	}
}

// TestParallelizeBarsBitmapCoupledScan: a scan probing a runtime bitmap is
// coupled to the coordinator's bitmap build and cannot move to a worker.
func TestParallelizeBarsBitmapCoupledScan(t *testing.T) {
	b := NewBuilder(testCatalog())
	build := b.TableScan("a", nil, nil)
	bm := b.BitmapNode(build, []int{0})
	probe := b.TableScan("b", nil, nil)
	b.AttachBitmap(probe, bm, []int{1})
	root := Parallelize(b.HashJoinNode(LogicalInnerJoin, probe, bm, []int{1}, []int{0}, nil), 4)
	if countGathers(root.Children[0]) != 0 {
		t.Fatal("gather inserted over bitmap-coupled probe scan")
	}
}

// TestParallelizeTwoStageAggShape: with TwoStageAgg, a grouped hash
// aggregate over a partitionable input becomes
// Gather ← HashAgg ← Repartition(hash on group cols) ← scan, and the
// repartition carries the group columns and DOP.
func TestParallelizeTwoStageAggShape(t *testing.T) {
	b := NewBuilder(testCatalog())
	agg := b.HashAgg(b.TableScan("b", nil, nil), []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	root := ParallelizeWith(b.Sort(agg, []int{0}, nil), 4, ParallelizeOptions{TwoStageAgg: true})
	g := root.Children[0]
	if g.Physical != Exchange || g.ExchangeKind != GatherStreams {
		t.Fatalf("no gather over the aggregate: %v", g.Physical)
	}
	a := g.Children[0]
	if a.Physical != HashAggregate {
		t.Fatalf("gather child is %v", a.Physical)
	}
	rep := a.Children[0]
	if rep.Physical != Exchange || rep.ExchangeKind != RepartitionStreams || rep.ExchangeDOP != 4 {
		t.Fatalf("aggregate input is not a repartition: %+v", rep)
	}
	if len(rep.ExchangeHashCols) != 1 || rep.ExchangeHashCols[0] != 1 {
		t.Fatalf("repartition hash cols %v, want [1]", rep.ExchangeHashCols)
	}
	if rep.Children[0].Physical != TableScan {
		t.Fatalf("repartition child is %v", rep.Children[0].Physical)
	}
	// Without the option, the same tree gets a plain gather under the agg.
	b2 := NewBuilder(testCatalog())
	agg2 := b2.HashAgg(b2.TableScan("b", nil, nil), []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	root2 := Parallelize(b2.Sort(agg2, []int{0}, nil), 4)
	if root2.Children[0].Physical != HashAggregate || root2.Children[0].Children[0].ExchangeKind != GatherStreams {
		t.Fatal("default rewrite should gather below the aggregate")
	}
}

// TestPartitionablePredicate pins the zone-safety predicate itself.
func TestPartitionablePredicate(t *testing.T) {
	b := NewBuilder(testCatalog())
	if !Partitionable(b.TableScan("a", nil, nil)) {
		t.Fatal("table scan should be partitionable")
	}
	if !Partitionable(b.Filter(b.ClusteredIndexScan("a", "pk", nil, nil), expr.Lt(expr.C(0, "id"), expr.KInt(3)))) {
		t.Fatal("filter over clustered scan should be partitionable")
	}
	if Partitionable(b.Sort(b.TableScan("a", nil, nil), []int{0}, nil)) {
		t.Fatal("sort must not be partitionable")
	}
	if Partitionable(b.SeekEq("a", "pk", []expr.Expr{expr.KInt(1)}, nil)) {
		t.Fatal("index seek must not be partitionable")
	}
	probe := b.TableScan("b", nil, nil)
	bm := b.BitmapNode(b.TableScan("a", nil, nil), []int{0})
	b.AttachBitmap(probe, bm, []int{1})
	if Partitionable(probe) {
		t.Fatal("bitmap-coupled scan must not be partitionable")
	}
}
