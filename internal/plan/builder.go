package plan

import (
	"fmt"

	"lqs/internal/engine/catalog"
	"lqs/internal/engine/expr"
	"lqs/internal/engine/types"
)

// Builder constructs physical plan nodes with output widths and logical
// labels filled in. It plays the role of the optimizer's plan emitter; the
// companion package internal/opt attaches cardinality and cost estimates
// afterwards. Builders panic on schema errors (unknown tables, bad join
// kinds): plans are authored by workload code, so a bad plan is a bug.
type Builder struct {
	Cat *catalog.Catalog
}

// NewBuilder returns a builder over the catalog.
func NewBuilder(cat *catalog.Catalog) *Builder { return &Builder{Cat: cat} }

func (b *Builder) arity(table string) int {
	return len(b.Cat.MustTable(table).Columns)
}

// TableScan scans a heap. pushed, if non-nil, is evaluated inside the
// storage engine (§4.3); pred is a residual evaluated by the scan operator.
func (b *Builder) TableScan(table string, pred, pushed expr.Expr) *Node {
	return &Node{
		Physical: TableScan, Logical: LogicalTableScan,
		Table: table, Pred: pred, PushedPred: pushed,
		Width: b.arity(table),
	}
}

// ClusteredIndexScan scans a clustered index's leaf level in key order.
func (b *Builder) ClusteredIndexScan(table, index string, pred, pushed expr.Expr) *Node {
	return &Node{
		Physical: ClusteredIndexScan, Logical: LogicalClusteredIndexScan,
		Table: table, Index: index, Pred: pred, PushedPred: pushed,
		Width: b.arity(table),
	}
}

// IndexScan scans a nonclustered index's leaf level. Scans here are
// covering: the operator outputs full table rows.
func (b *Builder) IndexScan(table, index string, pred, pushed expr.Expr) *Node {
	return &Node{
		Physical: IndexScan, Logical: LogicalIndexScan,
		Table: table, Index: index, Pred: pred, PushedPred: pushed,
		Width: b.arity(table),
	}
}

// Seek builds an index seek over [lo, hi] with the given inclusivities.
// The bound expressions are evaluated against the bind row: the empty row
// for standalone seeks, the current outer row when the seek sits on the
// inner side of a nested-loops join (a correlated seek). A nil hi with
// inclusive=true seeks the prefix equal to lo.
func (b *Builder) Seek(table, index string, lo, hi []expr.Expr, loInc, hiInc bool, residual expr.Expr) *Node {
	phys, logi := IndexSeek, LogicalIndexSeek
	if ix := b.Cat.MustTable(table).Index(index); ix != nil && ix.Clustered {
		phys, logi = ClusteredIndexSeek, LogicalClusteredIndexSeek
	}
	return &Node{
		Physical: phys, Logical: logi,
		Table: table, Index: index,
		SeekLo: lo, SeekHi: hi, SeekLoInc: loInc, SeekHiInc: hiInc,
		Pred:  residual,
		Width: b.arity(table),
	}
}

// SeekEq builds an equality seek: key == each of the bound expressions.
func (b *Builder) SeekEq(table, index string, keys []expr.Expr, residual expr.Expr) *Node {
	return b.Seek(table, index, keys, keys, true, true, residual)
}

// SeekKeysOnly builds a non-covering seek that outputs (key columns...,
// RID); pair it with RIDLookup to fetch full rows (bookmark lookup).
func (b *Builder) SeekKeysOnly(table, index string, lo, hi []expr.Expr, loInc, hiInc bool) *Node {
	n := b.Seek(table, index, lo, hi, loInc, hiInc, nil)
	ix := b.Cat.MustTable(table).Index(index)
	n.KeysOnly = true
	n.Width = len(ix.KeyCols) + 1
	return n
}

// ColumnstoreScan scans a columnstore index in batch mode (§4.7). cols are
// the accessed column ordinals; pushed is evaluated per batch inside the
// scan.
func (b *Builder) ColumnstoreScan(table, index string, cols []int, pushed expr.Expr) *Node {
	return &Node{
		Physical: ColumnstoreIndexScan, Logical: LogicalColumnstoreScan,
		Table: table, Index: index,
		AccessedCols: cols, PushedPred: pushed,
		BatchMode: true,
		Width:     b.arity(table),
	}
}

// RIDLookup fetches full heap rows for input rows whose last column is a
// RID (produced by a keys-only index seek).
func (b *Builder) RIDLookup(child *Node, table string) *Node {
	return &Node{
		Physical: RIDLookup, Logical: LogicalRIDLookup,
		Table: table, Children: []*Node{child},
		Width: b.arity(table),
	}
}

// ConstantScanRows emits the given literal rows.
func (b *Builder) ConstantScanRows(rows []types.Row) *Node {
	w := 0
	if len(rows) > 0 {
		w = len(rows[0])
	}
	return &Node{
		Physical: ConstantScan, Logical: LogicalConstantScan,
		ConstRows: rows, Width: w,
	}
}

// Filter applies a residual predicate.
func (b *Builder) Filter(child *Node, pred expr.Expr) *Node {
	return &Node{
		Physical: Filter, Logical: LogicalFilter,
		Children: []*Node{child}, Pred: pred, Width: child.Width,
	}
}

// ComputeScalar appends computed expressions to each input row.
func (b *Builder) ComputeScalar(child *Node, exprs ...expr.Expr) *Node {
	return &Node{
		Physical: ComputeScalar, Logical: LogicalComputeScalar,
		Children: []*Node{child}, Exprs: exprs,
		Width: child.Width + len(exprs),
	}
}

// Sort orders rows by the given columns.
func (b *Builder) Sort(child *Node, cols []int, desc []bool) *Node {
	return &Node{
		Physical: Sort, Logical: LogicalSort,
		Children: []*Node{child}, SortCols: cols, SortDesc: desc,
		Width: child.Width,
	}
}

// TopNSortNode keeps the first n rows of the sorted order.
func (b *Builder) TopNSortNode(child *Node, n int64, cols []int, desc []bool) *Node {
	return &Node{
		Physical: TopNSort, Logical: LogicalTopNSort,
		Children: []*Node{child}, TopN: n, SortCols: cols, SortDesc: desc,
		Width: child.Width,
	}
}

// DistinctSortNode sorts and de-duplicates on the given columns.
func (b *Builder) DistinctSortNode(child *Node, cols []int) *Node {
	return &Node{
		Physical: DistinctSort, Logical: LogicalDistinctSort,
		Children: []*Node{child}, SortCols: cols,
		Width: child.Width,
	}
}

// StreamAgg aggregates input already grouped on groupCols (sorted input).
// Output rows are the group key columns followed by the aggregate results.
func (b *Builder) StreamAgg(child *Node, groupCols []int, aggs []expr.AggSpec) *Node {
	return &Node{
		Physical: StreamAggregate, Logical: LogicalAggregate,
		Children: []*Node{child}, GroupCols: groupCols, Aggs: aggs,
		Width: len(groupCols) + len(aggs),
	}
}

// HashAgg aggregates with a hash table (blocking, two internal phases —
// the operator the paper's §4.5 model is motivated by).
func (b *Builder) HashAgg(child *Node, groupCols []int, aggs []expr.AggSpec) *Node {
	return &Node{
		Physical: HashAggregate, Logical: LogicalAggregate,
		Children: []*Node{child}, GroupCols: groupCols, Aggs: aggs,
		Width: len(groupCols) + len(aggs),
	}
}

// PartialAgg is a pre-aggregation below an exchange; execution is
// identical to HashAgg but the logical label (and its bounding rule)
// differs.
func (b *Builder) PartialAgg(child *Node, groupCols []int, aggs []expr.AggSpec) *Node {
	n := b.HashAgg(child, groupCols, aggs)
	n.Logical = LogicalPartialAggregate
	return n
}

// Concat unions children (UNION ALL).
func (b *Builder) Concat(children ...*Node) *Node {
	if len(children) == 0 {
		panic("plan: Concat with no children")
	}
	return &Node{
		Physical: Concatenation, Logical: LogicalConcatenation,
		Children: children, Width: children[0].Width,
	}
}

func joinWidth(kind LogicalOp, left, right *Node) int {
	switch kind {
	case LogicalLeftSemiJoin, LogicalLeftAntiSemiJoin:
		return left.Width
	case LogicalRightSemiJoin:
		return right.Width
	default:
		return left.Width + right.Width
	}
}

// HashJoinNode builds a hash join. Children are (probe, build): the build
// side is consumed entirely when the join opens (its subtree is a separate
// pipeline); probe rows then stream through. Output rows are probe columns
// followed by build columns. probeCols/buildCols are the equijoin keys.
func (b *Builder) HashJoinNode(kind LogicalOp, probe, build *Node, probeCols, buildCols []int, residual expr.Expr) *Node {
	if !kind.IsJoin() {
		panic(fmt.Sprintf("plan: %v is not a join kind", kind))
	}
	return &Node{
		Physical: HashJoin, Logical: kind,
		Children:      []*Node{probe, build},
		JoinLeftCols:  probeCols,
		JoinRightCols: buildCols,
		Residual:      residual,
		Width:         joinWidth(kind, probe, build),
	}
}

// MergeJoinNode builds a merge join over inputs sorted on the join keys.
// Output rows are left columns followed by right columns.
func (b *Builder) MergeJoinNode(kind LogicalOp, left, right *Node, leftCols, rightCols []int, residual expr.Expr) *Node {
	if !kind.IsJoin() {
		panic(fmt.Sprintf("plan: %v is not a join kind", kind))
	}
	return &Node{
		Physical: MergeJoin, Logical: kind,
		Children:      []*Node{left, right},
		JoinLeftCols:  leftCols,
		JoinRightCols: rightCols,
		Residual:      residual,
		Width:         joinWidth(kind, left, right),
	}
}

// NestedLoopsNode builds a nested-loops join: the inner child is re-opened
// for every outer row, with the outer row as its bind row (correlated
// seeks read it). residual is evaluated over outer ++ inner rows.
func (b *Builder) NestedLoopsNode(kind LogicalOp, outer, inner *Node, residual expr.Expr) *Node {
	if !kind.IsJoin() {
		panic(fmt.Sprintf("plan: %v is not a join kind", kind))
	}
	return &Node{
		Physical: NestedLoops, Logical: kind,
		Children: []*Node{outer, inner},
		Residual: residual,
		Width:    joinWidth(kind, outer, inner),
	}
}

// Spool buffers its input: eager spools consume everything on open
// (blocking); lazy spools cache rows as requested and replay on rewind.
func (b *Builder) Spool(child *Node, eager bool) *Node {
	logi := LogicalLazySpool
	if eager {
		logi = LogicalEagerSpool
	}
	return &Node{
		Physical: TableSpool, Logical: logi,
		Children: []*Node{child}, SpoolEager: eager,
		Width: child.Width,
	}
}

// ExchangeNode models the Parallelism operator: a semi-blocking row buffer
// between producer and consumer (§4.4, Fig. 7/8).
func (b *Builder) ExchangeNode(child *Node, kind ExchangeKind) *Node {
	logi := LogicalGatherStreams
	switch kind {
	case RepartitionStreams:
		logi = LogicalRepartitionStreams
	case DistributeStreams:
		logi = LogicalDistributeStreams
	}
	return &Node{
		Physical: Exchange, Logical: logi,
		Children: []*Node{child}, ExchangeKind: kind,
		Width: child.Width,
	}
}

// SegmentNode groups consecutive rows on the given columns (rows pass
// through; downstream operators observe group boundaries positionally).
func (b *Builder) SegmentNode(child *Node, groupCols []int) *Node {
	return &Node{
		Physical: SegmentOp, Logical: LogicalSegment,
		Children: []*Node{child}, GroupCols: groupCols,
		Width: child.Width,
	}
}

// BitmapNode creates a bitmap from its child's key columns and passes rows
// through. Wire the bitmap into a probe-side scan with AttachBitmap.
func (b *Builder) BitmapNode(child *Node, keyCols []int) *Node {
	return &Node{
		Physical: BitmapCreate, Logical: LogicalBitmapCreate,
		Children: []*Node{child}, BitmapKeyCols: keyCols,
		Width: child.Width,
	}
}

// AttachBitmap points scan at the bitmap produced by bitmapNode, probing
// the scan-output ordinals probeCols. The scan then filters rows inside
// the storage engine (§4.3).
func (b *Builder) AttachBitmap(scan, bitmapNode *Node, probeCols []int) {
	if bitmapNode.Physical != BitmapCreate {
		panic("plan: AttachBitmap source is not a BitmapCreate node")
	}
	scan.BitmapSource = bitmapNode
	scan.BitmapProbeCols = probeCols
}
