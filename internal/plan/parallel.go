package plan

// Intra-query parallelism rewrite: insert exchange operators over the
// maximal range-partitionable subtrees of a serial plan, the planner-side
// half of the engine's parallel execution. The executor turns each
// inserted GatherStreams exchange into a gather over ExchangeDOP worker
// threads scanning disjoint page ranges; everything above the gather stays
// serial, and because gathers preserve partition order over contiguous
// ranges the parallel plan's result rows are byte-identical to the serial
// plan's.
//
// Call Parallelize (or ParallelizeWith) on the root BEFORE Finalize: the
// rewrite inserts nodes, so IDs are assigned afterwards.

// ParallelizeOptions tunes the rewrite.
type ParallelizeOptions struct {
	// TwoStageAgg additionally rewrites grouped hash aggregates whose
	// input is partitionable into the repartition form
	//
	//	Gather ← HashAggregate ← Repartition(hash on group cols) ← scan…
	//
	// where each worker aggregates the hash partition routed to it. The
	// partition-by-group-columns guarantee makes every per-worker group
	// exact (no global combine phase), but groups are emitted in worker
	// order rather than serial first-seen order, so the result is
	// order-equivalent, not byte-identical — which is why it is opt-in.
	TwoStageAgg bool
}

// Parallelize inserts GatherStreams exchanges with the given DOP over every
// maximal parallel-safe subtree of the plan rooted at root, returning the
// (possibly replaced) root. dop <= 1 returns the tree unchanged. Safe
// subtrees are chains of Filter/ComputeScalar over a single
// range-partitionable scan, outside nested-loops inner sides and existing
// exchanges.
func Parallelize(root *Node, dop int) *Node {
	return ParallelizeWith(root, dop, ParallelizeOptions{})
}

// ParallelizeWith is Parallelize with explicit options.
func ParallelizeWith(root *Node, dop int, o ParallelizeOptions) *Node {
	if dop <= 1 || root == nil {
		return root
	}
	holder := &Node{Children: []*Node{root}}
	var walk func(n *Node, barred bool)
	walk = func(n *Node, barred bool) {
		for i, c := range n.Children {
			// Never parallelize where a rewind can reach (the gather
			// cannot re-run its workers), nor under an existing exchange.
			childBarred := barred || (n.Physical == NestedLoops && i == 1)
			if n.Physical == Exchange {
				childBarred = true
			}
			if !childBarred {
				if o.TwoStageAgg && c.Physical == HashAggregate && len(c.GroupCols) > 0 && Partitionable(c.Children[0]) {
					rep := &Node{
						Physical: Exchange, Logical: LogicalRepartitionStreams,
						Children:         []*Node{c.Children[0]},
						ExchangeKind:     RepartitionStreams,
						ExchangeDOP:      dop,
						ExchangeHashCols: append([]int(nil), c.GroupCols...),
						Width:            c.Children[0].Width,
					}
					c.Children[0] = rep
					n.Children[i] = &Node{
						Physical: Exchange, Logical: LogicalGatherStreams,
						Children:     []*Node{c},
						ExchangeKind: GatherStreams,
						ExchangeDOP:  dop,
						Width:        c.Width,
					}
					continue
				}
				if Partitionable(c) {
					n.Children[i] = &Node{
						Physical: Exchange, Logical: LogicalGatherStreams,
						Children:     []*Node{c},
						ExchangeKind: GatherStreams,
						ExchangeDOP:  dop,
						Width:        c.Width,
					}
					continue
				}
			}
			walk(c, childBarred)
		}
	}
	walk(holder, false)
	return holder.Children[0]
}

// Partitionable reports whether the subtree rooted at n can run as one
// parallel zone: Filter/ComputeScalar chains over exactly one
// range-partitionable scan, with no runtime-bitmap coupling to the rest of
// the plan (bitmaps are populated by the coordinator at run time, which a
// worker zone cannot observe).
func Partitionable(n *Node) bool {
	switch n.Physical {
	case TableScan, ClusteredIndexScan, IndexScan, ColumnstoreIndexScan:
		return n.BitmapSource == nil
	case Filter, ComputeScalar:
		return len(n.Children) == 1 && Partitionable(n.Children[0])
	}
	return false
}
