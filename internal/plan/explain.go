package plan

import (
	"fmt"
	"strings"
)

// NodeProfile carries one operator's runtime actuals for plan annotation —
// the est-vs-actual comparison SSMS shows in an actual execution plan. It
// is a plain value so display layers need not depend on the exec or dmv
// packages; dmv.Snapshot.NodeProfiles adapts a DMV snapshot into it.
type NodeProfile struct {
	ActualRows int64
	Rebinds    int64
	Opened     bool
	Closed     bool
}

// ExplainWithProfile renders the plan tree like Plan.String, with each node
// annotated by its runtime actuals: actual row count, the actual/estimate
// deviation factor, rebind count, and lifecycle state. profiles is indexed
// by node ID; a short or nil slice leaves the missing nodes unannotated, so
// a stale snapshot from a different plan shape degrades rather than panics.
func ExplainWithProfile(p *Plan, profiles []NodeProfile) string {
	var sb strings.Builder
	p.Root.formatProfiled(&sb, 0, profiles)
	return sb.String()
}

func (n *Node) formatProfiled(sb *strings.Builder, depth int, profiles []NodeProfile) {
	n.formatLine(sb, depth)
	if n.ID >= 0 && n.ID < len(profiles) {
		pr := profiles[n.ID]
		fmt.Fprintf(sb, " actual=%d", pr.ActualRows)
		if n.EstRows > 0 {
			fmt.Fprintf(sb, " (%.2fx)", float64(pr.ActualRows)/n.EstRows)
		}
		if pr.Rebinds > 1 {
			fmt.Fprintf(sb, " rebinds=%d", pr.Rebinds)
		}
		switch {
		case pr.Closed:
			sb.WriteString(" [done]")
		case pr.Opened:
			sb.WriteString(" [open]")
		default:
			sb.WriteString(" [pending]")
		}
	}
	sb.WriteByte('\n')
	for _, c := range n.Children {
		c.formatProfiled(sb, depth+1, profiles)
	}
}
