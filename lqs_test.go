package lqs_test

import (
	"fmt"
	"testing"
	"time"

	"lqs"
	"lqs/internal/engine/expr"
)

// exampleDB builds a small database through the public facade.
func exampleDB() *lqs.Database {
	cat := lqs.NewCatalog()
	orders := lqs.NewTable("orders",
		lqs.Column{Name: "id", Kind: lqs.KindInt},
		lqs.Column{Name: "region", Kind: lqs.KindInt},
		lqs.Column{Name: "total", Kind: lqs.KindFloat},
	)
	orders.AddIndex(&lqs.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	cat.Add(orders)
	db := lqs.NewDatabase(cat, 1<<16)
	rows := make([]lqs.Row, 20000)
	for i := range rows {
		rows[i] = lqs.Row{lqs.Int(int64(i)), lqs.Int(int64(i % 8)), lqs.Float(float64(i % 977))}
	}
	db.Load("orders", rows)
	db.BuildAllStats(32)
	return db
}

func TestPublicFacadeEndToEnd(t *testing.T) {
	db := exampleDB()
	b := lqs.NewPlanBuilder(db.Catalog)
	agg := b.HashAgg(b.TableScan("orders", nil, nil), []int{1},
		[]expr.AggSpec{{Kind: expr.Sum, Arg: expr.C(2, "total")}})
	session := lqs.Start(db, b.Sort(agg, []int{0}, nil), lqs.DefaultOptions())

	polls := 0
	var lastProgress float64
	rows, err := session.Monitor(500*time.Microsecond, func(q *lqs.QuerySnapshot) {
		polls++
		if q.Progress < 0 || q.Progress > 1 {
			t.Fatalf("progress out of range: %v", q.Progress)
		}
		lastProgress = q.Progress
	})
	if err != nil {
		t.Fatalf("monitor: %v", err)
	}
	if rows != 8 {
		t.Fatalf("query returned %d rows", rows)
	}
	if polls < 3 {
		t.Fatalf("only %d polls observed", polls)
	}
	if lastProgress < 0.99 {
		t.Fatalf("final progress %v", lastProgress)
	}
	out := session.Render(session.Snapshot())
	if len(out) == 0 {
		t.Fatal("empty render")
	}
}

// Example demonstrates attaching Live Query Statistics to a running query
// and reading progress mid-flight.
func Example() {
	db := exampleDB()
	b := lqs.NewPlanBuilder(db.Catalog)
	scan := b.TableScan("orders", nil, nil)
	agg := b.HashAgg(scan, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})
	session := lqs.Start(db, agg, lqs.DefaultOptions())

	for more, err := true, error(nil); more && err == nil; {
		more, err = session.Step(2)
	}
	final := session.Snapshot()
	fmt.Printf("progress %.0f%%, scan rows %d\n",
		final.Progress*100, final.Ops[1].RowsSoFar)
	// Output: progress 100%, scan rows 20000
}
