module lqs

go 1.22
