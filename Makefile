GO ?= go

.PHONY: all vet build test race bench bench-json trace-smoke fuzz-smoke chaos-smoke serve-smoke acc-json acc-smoke ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: registry-driven concurrent queries,
# cross-goroutine snapshot capture, the buffer-pool latch, the parallel
# tracing harness (worker pool + ordered merge), the intra-query parallel
# executor (gather workers + per-thread counters + estimator), the chaos
# harness (fault injection into parallel workers and the poller), the
# expression compiler (compiled predicates run on every parallel worker),
# and the monitoring server (concurrent submit/poll/stream/cancel over HTTP).
race:
	$(GO) test -race ./internal/lqs/... ./internal/engine/dmv/... ./internal/metrics/... ./internal/trace/... ./internal/obs/... ./internal/engine/exec/... ./internal/engine/expr/... ./internal/progress/... ./internal/chaos/... ./internal/server/... ./internal/accuracy/...

# Short coverage-guided runs of every native fuzz target: the DMV
# per-thread aggregation and the progress estimator fed adversarial
# snapshots. Seeds always run under plain `make test`; this adds a bounded
# mutation pass so CI exercises the generators too.
fuzz-smoke:
	$(GO) test ./internal/engine/dmv/ -run '^$$' -fuzz FuzzAggregateThreads -fuzztime 10s
	$(GO) test ./internal/progress/ -run '^$$' -fuzz FuzzEstimator -fuzztime 200x
	$(GO) test ./internal/progress/ -run '^$$' -fuzz FuzzDegradedSnapshot -fuzztime 200x
	$(GO) test ./internal/progress/ -run '^$$' -fuzz FuzzEnsembleSelect -fuzztime 200x

# Quick chaos differential battery through the CLI entry point: a reduced
# (workload x DOP x fault-rate) grid where every chaos run must either be
# byte-identical to the fault-free reference or fail with a typed error,
# with estimator invariants checked at every poll. Exits non-zero on any
# contract violation.
chaos-smoke:
	$(GO) run ./cmd/lqsbench -chaos -chaos-seed 7

# Quick-mode suite with parallel tracing; machine-readable timings (with
# speedup vs a serial reference pass) land in bench.json.
bench:
	$(GO) run ./cmd/lqsbench -parallel 0 -bench-json bench.json

# Wall-clock benchmark trajectory: run the go-test benchmarks (one per
# paper figure, plus the estimator and row-vs-batch micro-benchmarks) and
# convert the output into a committed JSON artifact. Compare BENCH_*.json
# across PRs to see where execution time went. Override the label per PR:
# `make bench-json BENCH_LABEL=pr8`.
BENCH_LABEL ?= pr7
BENCH_TIME ?= 3x
bench-json:
	$(GO) test -run '^$$' -bench . -benchmem -benchtime $(BENCH_TIME) . > bench-raw.txt
	$(GO) run ./cmd/benchjson -label $(BENCH_LABEL) -o BENCH_$(BENCH_LABEL).json < bench-raw.txt
	@rm -f bench-raw.txt

# Tiny tracing smoke test: run a few queries with event tracing on, emit
# Chrome trace-event JSON, and validate it against the schema (ValidateChrome
# runs inside lqsbench before each file is written; the python step checks
# the files parse as the JSON-object trace format Perfetto expects).
trace-smoke:
	rm -rf .trace-smoke && $(GO) run ./cmd/lqsbench -run none -trace-dir .trace-smoke -trace-limit 2
	$(GO) run ./cmd/lqsmon -plain -explain -interval 5ms -q Q1 > /dev/null
	@ls .trace-smoke/*.trace.json .trace-smoke/*.explain.txt > /dev/null
	@rm -rf .trace-smoke && echo "trace-smoke: OK"

# End-to-end smoke of the monitoring server binary: start lqsd on a local
# port, submit one query over HTTP, wait for it to succeed, scrape /metrics
# and require the query-progress family, then shut the server down cleanly
# (SIGTERM exercises the graceful-drain path).
serve-smoke:
	@rm -f .serve-smoke.log
	$(GO) build -o .lqsd-smoke ./cmd/lqsd
	@./.lqsd-smoke -addr 127.0.0.1:18321 -pace 0 > .serve-smoke.log 2>&1 & \
	pid=$$!; \
	trap "kill $$pid 2>/dev/null; rm -f .lqsd-smoke .serve-smoke.log" EXIT; \
	for i in $$(seq 1 50); do \
		curl -sf http://127.0.0.1:18321/healthz > /dev/null 2>&1 && break; sleep 0.1; \
	done; \
	curl -sf -X POST http://127.0.0.1:18321/queries -d '{"workload":"tpch","query":"Q6","tenant":"smoke"}' | grep -q '"id":1' || { echo "serve-smoke: submit failed"; exit 1; }; \
	for i in $$(seq 1 100); do \
		curl -sf http://127.0.0.1:18321/queries/1 | grep -q '"state":"SUCCEEDED"' && break; sleep 0.1; \
	done; \
	curl -sf http://127.0.0.1:18321/queries/1 | grep -q '"state":"SUCCEEDED"' || { echo "serve-smoke: query never succeeded"; exit 1; }; \
	curl -sf http://127.0.0.1:18321/metrics | grep -q '^lqs_query_progress{.*tenant="smoke"' || { echo "serve-smoke: /metrics missing lqs_query_progress"; exit 1; }; \
	curl -sf http://127.0.0.1:18321/metrics | grep -q '^lqs_buffer_manager_page_hits_total{' || { echo "serve-smoke: /metrics missing buffer-manager family"; exit 1; }; \
	kill -TERM $$pid; wait $$pid || { echo "serve-smoke: lqsd did not drain cleanly"; exit 1; }; \
	echo "serve-smoke: OK"

# Estimator-accuracy trajectory artifact: replay the quick suite through
# every estimator mode (TGN/DNE/LQS/ENS) against the ground-truth oracle and
# commit the per-query error metrics. Deterministic: the same seed yields
# a byte-identical file. Exits non-zero if any mode breaches its pinned
# error ceiling. Override the label per PR: `make acc-json ACC_LABEL=pr10`.
ACC_LABEL ?= pr10
acc-json:
	$(GO) run ./cmd/lqsbench -accuracy -acc-label $(ACC_LABEL) -acc-json ACC_$(ACC_LABEL).json

# Quick accuracy gate for CI: same suite, artifact to a scratch file, plus
# the in-tree threshold test (the per-mode ceilings also run under plain
# `make test` via TestQuickSuiteWithinCeilings).
acc-smoke:
	$(GO) run ./cmd/lqsbench -accuracy -acc-label ci -acc-json .acc-smoke.json
	@rm -f .acc-smoke.json && echo "acc-smoke: OK"

ci: vet build test race trace-smoke fuzz-smoke chaos-smoke serve-smoke acc-smoke
