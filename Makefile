GO ?= go

.PHONY: all vet build test race bench ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: registry-driven concurrent queries,
# cross-goroutine snapshot capture, the buffer-pool latch, and the
# parallel tracing harness (worker pool + ordered merge).
race:
	$(GO) test -race ./internal/lqs/... ./internal/engine/dmv/... ./internal/metrics/...

# Quick-mode suite with parallel tracing; machine-readable timings (with
# speedup vs a serial reference pass) land in bench.json.
bench:
	$(GO) run ./cmd/lqsbench -parallel 0 -bench-json bench.json

ci: vet build test race
