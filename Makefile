GO ?= go

.PHONY: all vet build test race ci

all: ci

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# The concurrency-sensitive packages: registry-driven concurrent queries,
# cross-goroutine snapshot capture, and the buffer-pool latch.
race:
	$(GO) test -race ./internal/lqs/... ./internal/engine/dmv/...

ci: vet build test race
