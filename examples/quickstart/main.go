// Quickstart: build a database, run a query, and watch live query and
// operator progress — the minimal end-to-end use of the public API.
package main

import (
	"fmt"
	"time"

	"lqs"
	"lqs/internal/engine/expr"
)

func main() {
	// 1. Schema: one orders table.
	cat := lqs.NewCatalog()
	orders := lqs.NewTable("orders",
		lqs.Column{Name: "id", Kind: lqs.KindInt},
		lqs.Column{Name: "region", Kind: lqs.KindInt},
		lqs.Column{Name: "total", Kind: lqs.KindFloat},
	)
	orders.AddIndex(&lqs.Index{Name: "pk", KeyCols: []int{0}, Clustered: true})
	cat.Add(orders)

	// 2. Load 50k rows and build statistics.
	db := lqs.NewDatabase(cat, 1<<18)
	rows := make([]lqs.Row, 50_000)
	for i := range rows {
		rows[i] = lqs.Row{lqs.Int(int64(i)), lqs.Int(int64(i % 12)), lqs.Float(float64(i%997) * 1.5)}
	}
	db.Load("orders", rows)
	db.BuildAllStats(64)

	// 3. A plan: scan → filter → aggregate by region → sort by revenue.
	b := lqs.NewPlanBuilder(cat)
	scan := b.TableScan("orders", nil, nil)
	filtered := b.Filter(scan, expr.Gt(expr.C(2, "total"), expr.KInt(100)))
	agg := b.HashAgg(filtered, []int{1}, []expr.AggSpec{
		{Kind: expr.Sum, Arg: expr.C(2, "total")},
		{Kind: expr.CountStar},
	})
	root := b.Sort(agg, []int{1}, []bool{true})

	// 4. Run it with Live Query Statistics attached: the callback fires at
	// every virtual poll interval with fresh progress estimates.
	session := lqs.Start(db, root, lqs.DefaultOptions())
	n, err := session.Monitor(2*time.Millisecond, func(q *lqs.QuerySnapshot) {
		fmt.Printf("t=%-10v overall %5.1f%%   scan %5.1f%%  agg %5.1f%%  sort %5.1f%%\n",
			q.At, q.Progress*100,
			q.Ops[3].Progress*100, q.Ops[1].Progress*100, q.Ops[0].Progress*100)
	})
	if err != nil {
		fmt.Printf("query %s: %v\n", session.State(), err)
		return
	}

	fmt.Printf("\nfinal plan state:\n%s", session.Render(session.Snapshot()))
	fmt.Printf("query returned %d rows\n", n)
}
