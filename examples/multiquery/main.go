// Multiquery: LQS monitoring several concurrently executing queries, each
// with its own progress display — the paper's §2.1 ("LQS supports the
// display of progress estimates for multiple, concurrently executing
// queries, each of them being given their own dedicated window").
//
// Each query runs on its own virtual clock (its own session, as separate
// connections would); the monitor round-robins execution slices between
// them and prints a dashboard line per tick. The queries are fully
// pipelined (streaming to the root), so each slice advances them a little
// and the dashboard shows genuinely interleaved progress.
package main

import (
	"fmt"
	"strings"

	"lqs/internal/engine/expr"
	"lqs/internal/lqs"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

func main() {
	w := workload.TPCH(42, workload.TPCHRowstore)

	mk := func(name string, build func(b *plan.Builder) *plan.Node) (string, *lqs.Session) {
		return name, lqs.Start(w.DB, build(w.Builder()), progress.LQSOptions())
	}

	type job struct {
		name string
		s    *lqs.Session
	}
	var jobs []job
	n1, s1 := mk("filter-scan", func(b *plan.Builder) *plan.Node {
		return b.Filter(b.TableScan("lineitem", nil, nil),
			expr.Lt(expr.C(6, "l_shipdate"), expr.KInt(1200)))
	})
	n2, s2 := mk("index-nl-join", func(b *plan.Builder) *plan.Node {
		inner := b.SeekEq("orders", "pk", []expr.Expr{expr.C(0, "l_orderkey")}, nil)
		return b.NestedLoopsNode(plan.LogicalInnerJoin,
			b.TableScan("lineitem", nil, nil), inner, nil)
	})
	n3, s3 := mk("merge-join", func(b *plan.Builder) *plan.Node {
		return b.MergeJoinNode(plan.LogicalInnerJoin,
			b.IndexScan("lineitem", "ix_orderkey", nil, nil),
			b.ClusteredIndexScan("orders", "pk", nil, nil),
			[]int{0}, []int{0}, nil)
	})
	jobs = append(jobs, job{n1, s1}, job{n2, s2}, job{n3, s3})

	bar := func(f float64) string {
		n := int(f * 20)
		if n > 20 {
			n = 20
		}
		return "[" + strings.Repeat("=", n) + strings.Repeat(" ", 20-n) + "]"
	}

	tick := 0
	for {
		anyRunning := false
		for _, j := range jobs {
			if !j.s.Done() {
				j.s.Step(2500)
				anyRunning = true
			}
		}
		tick++
		fmt.Printf("tick %-3d ", tick)
		for _, j := range jobs {
			snap := j.s.Snapshot()
			state := fmt.Sprintf("%5.1f%%", snap.Progress*100)
			if j.s.Done() {
				state = " done "
			}
			fmt.Printf(" %-14s %s %s", j.name, bar(snap.Progress), state)
		}
		fmt.Println()
		if !anyRunning {
			break
		}
	}
	fmt.Println("\nall queries complete:")
	for _, j := range jobs {
		fmt.Printf("  %-14s %7d rows in %v virtual time\n",
			j.name, j.s.Query.RowsReturned(), j.s.Query.Ctx.Clock.Now())
	}
}
