// Multiquery: LQS monitoring several concurrently executing queries, each
// with its own progress display — the paper's §2.1 ("LQS supports the
// display of progress estimates for multiple, concurrently executing
// queries, each of them being given their own dedicated window").
//
// Each query runs on its own virtual clock and its own goroutine under a
// QueryRegistry (separate connections, as a real server would hold them);
// the dashboard goroutine polls the registry concurrently — the snapshots
// it renders are lock-synchronized with the executors — and the slowest
// query is cancelled mid-flight, exactly as a DBA would kill a session.
package main

import (
	"fmt"
	"strings"
	"time"

	"lqs/internal/engine/expr"
	"lqs/internal/lqs"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

func main() {
	w := workload.TPCH(42, workload.TPCHRowstore)

	mk := func(build func(b *plan.Builder) *plan.Node) *lqs.Session {
		return lqs.Start(w.DB, build(w.Builder()), progress.LQSOptions())
	}

	reg := lqs.NewQueryRegistry()
	id1 := reg.Launch("filter-scan", mk(func(b *plan.Builder) *plan.Node {
		return b.Filter(b.TableScan("lineitem", nil, nil),
			expr.Lt(expr.C(6, "l_shipdate"), expr.KInt(1200)))
	}))
	id2 := reg.Launch("index-nl-join", mk(func(b *plan.Builder) *plan.Node {
		inner := b.SeekEq("orders", "pk", []expr.Expr{expr.C(0, "l_orderkey")}, nil)
		return b.NestedLoopsNode(plan.LogicalInnerJoin,
			b.TableScan("lineitem", nil, nil), inner, nil)
	}))
	id3 := reg.Launch("merge-join", mk(func(b *plan.Builder) *plan.Node {
		return b.MergeJoinNode(plan.LogicalInnerJoin,
			b.IndexScan("lineitem", "ix_orderkey", nil, nil),
			b.ClusteredIndexScan("orders", "pk", nil, nil),
			[]int{0}, []int{0}, nil)
	}))
	ids := []lqs.QueryID{id1, id2, id3}

	bar := func(f float64) string {
		n := int(f * 20)
		if n > 20 {
			n = 20
		}
		return "[" + strings.Repeat("=", n) + strings.Repeat(" ", 20-n) + "]"
	}

	killed := false
	for tick := 1; ; tick++ {
		infos := reg.List()
		anyRunning := false
		fmt.Printf("tick %-3d ", tick)
		for _, qi := range infos {
			if !qi.State.Terminal() {
				anyRunning = true
			}
			state := fmt.Sprintf("%5.1f%%", qi.Progress*100)
			if qi.State.Terminal() {
				state = strings.ToLower(qi.State.String())
			}
			fmt.Printf(" %-14s %s %-9s", qi.Name, bar(qi.Progress), state)
		}
		fmt.Println()
		// The DBA move: the nested-loops join is the slow one — kill it
		// once the other two are done and it is still under 50%.
		if !killed && infos[0].State.Terminal() && infos[2].State.Terminal() &&
			!infos[1].State.Terminal() && infos[1].Progress < 0.5 {
			killed = true
			fmt.Println("         ... index-nl-join is lagging far behind; cancelling it")
			_ = reg.Cancel(id2, "DBA kill: slowest of the batch")
		}
		if !anyRunning {
			break
		}
		time.Sleep(2 * time.Millisecond) // real-time pacing between polls
	}

	fmt.Println("\nall queries terminal:")
	for _, id := range ids {
		qi, _ := reg.Poll(id)
		rows, err := reg.Wait(id)
		if err != nil {
			fmt.Printf("  %-14s %-9s after %v virtual time: %v\n",
				qi.Name, qi.State, qi.VirtualTime, err)
			continue
		}
		fmt.Printf("  %-14s %7d rows in %v virtual time\n", qi.Name, rows, qi.VirtualTime)
	}
}
