// Troubleshoot: the paper's §1 / §2.3.1 DBA scenario. A nested-loops plan
// runs with a grossly under-estimated outer cardinality. Watching LQS
// live, the DBA sees (a) the outer scan's actual row count blow past the
// optimizer's estimate — the smoking gun of a cardinality estimation
// problem — and (b) operator progress park at 99% while the operator
// keeps running (the paper's Fig. 4 behaviour). Both signals fire long
// before the query ends — so the DBA acts on them: once the alert fires,
// the runaway query is cancelled instead of being left to burn resources,
// and Monitor returns the terminal CANCELLED error.
package main

import (
	"fmt"
	"time"

	"lqs/internal/engine/exec"
	"lqs/internal/engine/expr"
	"lqs/internal/lqs"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

func main() {
	w := workload.TPCDS(42)
	b := w.Builder()

	// The DBA's query: customers born before 1990 (the filter the
	// optimizer badly under-estimates) driving an index nested loop.
	cust := b.TableScan("customer",
		expr.Lt(expr.C(2, "c_birth_year"), expr.KInt(1990)), nil)
	seek := b.SeekEq("store_sales", "ix_cust", []expr.Expr{expr.C(0, "c_custkey")}, nil)
	nl := b.NestedLoopsNode(plan.LogicalInnerJoin, cust, seek, nil)
	root := b.HashAgg(nl, []int{1}, []expr.AggSpec{{Kind: expr.CountStar}})

	// Compile with an injected 50x under-estimate on the customer filter
	// (standing in for a stale-statistics misestimate).
	p := plan.Finalize(root)
	est := opt.NewEstimator(w.DB.Catalog)
	est.NodeMultiplier = func(n *plan.Node) float64 {
		if n == cust {
			return 0.02
		}
		return 1
	}
	est.Estimate(p)
	q := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), sim.NewClock())
	session := lqs.Attach(q, w.DB, progress.LQSOptions())

	fmt.Printf("optimizer expects %.0f outer rows from the customer scan\n\n", cust.EstRows)
	alerted := false
	_, err := session.Monitor(2*time.Millisecond, func(snap *lqs.QuerySnapshot) {
		sc := snap.Ops[cust.ID]
		fmt.Printf("t=%-9v query %5.1f%% | outer scan: %5.1f%% rows=%-5d (est %.0f, refined %.0f)\n",
			snap.At, snap.Progress*100, sc.Progress*100, sc.RowsSoFar, sc.EstRows, sc.RefinedN)
		// The DBA's detection rule: actual rows far beyond the estimate
		// while the operator is still running.
		if !alerted && sc.Active && float64(sc.RowsSoFar) > 2*sc.EstRows {
			alerted = true
			fmt.Printf("\n  *** ALERT: outer scan has produced %d rows, already %.0fx the\n"+
				"      optimizer estimate of %.0f — cardinality estimation problem.\n"+
				"      Consider updating statistics or adding a plan hint (paper §1).\n"+
				"      LQS's refined estimate is now %.0f rows.\n"+
				"      Killing the runaway query.\n\n",
				sc.RowsSoFar, float64(sc.RowsSoFar)/sc.EstRows, sc.EstRows, sc.RefinedN)
			session.Cancel("runaway cardinality misestimate (DBA kill)")
		}
	})
	final := session.Snapshot()
	fmt.Printf("\nfinal state %s after %v virtual time: %v\n", final.State, final.At, err)
	fmt.Printf("outer scan produced %d rows vs estimate %.0f before the kill\n",
		final.Ops[cust.ID].RowsSoFar, cust.EstRows)
	if !alerted {
		fmt.Println("(no alert fired — unexpected for this scenario)")
	}
}
