// Columnstore: batch-mode execution with segment-based progress (§4.7).
// The same aggregation runs against the row-store and the columnstore
// physical designs of the TPC-H workload; the columnstore plan is far
// faster (batch mode) and its scan progress is driven by the fraction of
// column segments processed rather than GetNext counts.
package main

import (
	"fmt"
	"time"

	"lqs/internal/lqs"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

func run(w *workload.Workload, name string) {
	var q *workload.Query
	for i := range w.Queries {
		if w.Queries[i].Name == name {
			q = &w.Queries[i]
		}
	}
	session := lqs.Start(w.DB, q.Build(w.Builder()), progress.LQSOptions())
	fmt.Printf("--- %s %s ---\n", w.Name, name)
	session.Monitor(2*time.Millisecond, func(snap *lqs.QuerySnapshot) {
		fmt.Printf("t=%-9v overall %5.1f%%\n", snap.At, snap.Progress*100)
	})
	fmt.Printf("done in %v virtual time\n\n", session.Query.Ctx.Clock.Now())
}

func main() {
	// Q1 is the pricing-summary aggregation over lineitem; both designs
	// answer it, with very different plans and speeds.
	rw := workload.TPCH(42, workload.TPCHRowstore)
	cw := workload.TPCH(42, workload.TPCHColumnstore)
	run(rw, "Q1")
	run(cw, "Q1")

	// Show the batch scan's segment counters explicitly.
	var q *workload.Query
	for i := range cw.Queries {
		if cw.Queries[i].Name == "Q6" {
			q = &cw.Queries[i]
		}
	}
	session := lqs.Start(cw.DB, q.Build(cw.Builder()), progress.LQSOptions())
	fmt.Println("--- TPC-H ColumnStore Q6: segment-fraction progress (§4.7) ---")
	session.Monitor(500*time.Microsecond, func(snap *lqs.QuerySnapshot) {
		// Node IDs are preorder; the columnstore scan is the deepest node.
		scanID := len(snap.Ops) - 1
		fmt.Printf("t=%-9v scan %5.1f%% (segments drive it)  query %5.1f%%\n",
			snap.At, snap.Ops[scanID].Progress*100, snap.Progress*100)
	})
	fmt.Printf("done: %s", session.Render(session.Snapshot()))
}
