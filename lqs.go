// Package lqs is a from-scratch reproduction of "Operator and Query
// Progress Estimation in Microsoft SQL Server Live Query Statistics"
// (SIGMOD 2016): a client-side progress estimator for running queries,
// together with the full engine substrate it needs — storage, iterator
// execution with DMV-style counters, and optimizer estimates — built on a
// deterministic virtual clock.
//
// This root package is the public facade: it re-exports the pieces a
// downstream user composes —
//
//	db := lqs.NewDatabase(cat, poolPages)   // storage + catalog
//	b  := lqs.NewPlanBuilder(db.Catalog)    // physical plan construction
//	s  := lqs.Start(db, b.TableScan(...), lqs.DefaultOptions())
//	rows, err := s.Monitor(500*time.Microsecond, func(q *lqs.QuerySnapshot) {
//	    fmt.Print(s.Render(q))              // live plan + progress
//	})
//
// Monitor returns a non-nil *QueryError when the query was cancelled
// (s.Cancel, or a virtual-time deadline) or failed (injected I/O faults,
// memory-grant exhaustion, internal errors); operator panics never escape
// the executor. Concurrent queries run under a QueryRegistry, which lists,
// polls, and cancels them from any goroutine while they execute.
//
// See examples/ for runnable scenarios, internal/progress for the paper's
// techniques (§4.1-§4.7), and internal/experiments for the evaluation
// harness regenerating every figure of Section 5.
package lqs

import (
	"lqs/internal/engine/catalog"
	"lqs/internal/engine/exec"
	"lqs/internal/engine/storage"
	"lqs/internal/engine/types"
	"lqs/internal/lqs"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
)

// Re-exported core types: the data model, catalog, storage, planning, and
// monitoring surfaces.
type (
	// Value is a single SQL value; Row is a tuple of them.
	Value = types.Value
	Row   = types.Row

	// Catalog, Table, Column, and Index describe schemas.
	Catalog = catalog.Catalog
	Table   = catalog.Table
	Column  = catalog.Column
	Index   = catalog.Index

	// Database is the loaded storage layer (heaps, B-trees, columnstores).
	Database = storage.Database

	// PlanBuilder constructs physical plan trees; PlanNode is one operator.
	PlanBuilder = plan.Builder
	PlanNode    = plan.Node
	Plan        = plan.Plan

	// Query is one executing query; Session monitors it; QuerySnapshot is
	// one poll's display state; Options selects the estimator techniques.
	Query         = exec.Query
	Session       = lqs.Session
	QuerySnapshot = lqs.QuerySnapshot
	OpStatus      = lqs.OpStatus
	Options       = progress.Options
	Estimate      = progress.Estimate

	// QueryError is the typed terminal error of a cancelled or failed
	// query; ErrorKind classifies it; QueryState is its lifecycle state.
	QueryError = exec.QueryError
	ErrorKind  = exec.ErrorKind
	QueryState = exec.QueryState

	// QueryRegistry tracks concurrently executing queries (launch, list,
	// poll, cancel, wait); QueryInfo is one listing row.
	QueryRegistry = lqs.QueryRegistry
	QueryID       = lqs.QueryID
	QueryInfo     = lqs.QueryInfo

	// FaultConfig seeds the storage fault-injection harness.
	FaultConfig   = storage.FaultConfig
	FaultInjector = storage.FaultInjector
)

// Query lifecycle states.
const (
	StatePending   = exec.StatePending
	StateRunning   = exec.StateRunning
	StateSucceeded = exec.StateSucceeded
	StateCancelled = exec.StateCancelled
	StateFailed    = exec.StateFailed
)

// QueryError kinds.
const (
	KindInternal  = exec.KindInternal
	KindCancelled = exec.KindCancelled
	KindDeadline  = exec.KindDeadline
	KindMemory    = exec.KindMemory
	KindIO        = exec.KindIO
)

// Value constructors.
var (
	Int   = types.Int
	Float = types.Float
	Str   = types.Str
	Null  = types.Null
)

// Column kinds.
const (
	KindInt    = types.KindInt
	KindFloat  = types.KindFloat
	KindString = types.KindString
)

// NewCatalog creates an empty catalog.
func NewCatalog() *Catalog { return catalog.NewCatalog() }

// NewTable creates a table schema.
func NewTable(name string, cols ...Column) *Table { return catalog.NewTable(name, cols...) }

// NewDatabase creates an empty database over a catalog with a buffer pool
// of poolPages pages.
func NewDatabase(cat *Catalog, poolPages int) *Database {
	return storage.NewDatabase(cat, poolPages)
}

// NewPlanBuilder returns a physical plan builder over the catalog.
func NewPlanBuilder(cat *Catalog) *PlanBuilder { return plan.NewBuilder(cat) }

// DefaultOptions is the shipping Live Query Statistics estimator
// configuration: every Section 4 technique enabled.
func DefaultOptions() Options { return progress.LQSOptions() }

// Start finalizes a plan, attaches optimizer estimates, and returns a
// monitoring session ready to Step/Snapshot/Monitor.
func Start(db *Database, root *PlanNode, o Options) *Session {
	return lqs.Start(db, root, o)
}

// StartDOP is Start with intra-query parallelism: the plan is rewritten
// with exchange operators over its partitionable scans and those zones
// run on dop worker threads. Results and aggregated counters match the
// serial session; dop <= 1 behaves exactly like Start.
func StartDOP(db *Database, root *PlanNode, dop int, o Options) *Session {
	return lqs.StartDOP(db, root, dop, o)
}

// Estimate attaches optimizer cardinality and cost estimates to a
// finalized plan (Start does this automatically).
func EstimatePlan(cat *Catalog, p *Plan) { opt.NewEstimator(cat).Estimate(p) }

// NewQueryRegistry returns an empty registry for concurrent query
// execution and monitoring.
func NewQueryRegistry() *QueryRegistry { return lqs.NewQueryRegistry() }
