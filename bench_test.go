// Benchmarks regenerating the paper's evaluation: one benchmark per figure
// and table of Section 5 (each iteration re-runs the full experiment
// against the simulated engine), plus micro-benchmarks for the estimator
// hot path. Run with:
//
//	go test -bench=. -benchmem
//
// The figure benchmarks use the Quick configuration (the large REAL
// workloads are strided); cmd/lqsbench -full runs everything untrimmed.
package lqs_test

import (
	"sync"
	"testing"
	"time"

	"lqs/internal/engine/dmv"
	"lqs/internal/engine/exec"
	"lqs/internal/experiments"
	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/progress"
	"lqs/internal/sim"
	"lqs/internal/workload"
)

var (
	suiteOnce sync.Once
	suite     *experiments.Suite
)

// benchSuite shares one workload cache across figure benchmarks so each
// measures experiment execution, not data generation.
func benchSuite() *experiments.Suite {
	suiteOnce.Do(func() {
		suite = experiments.NewSuite(experiments.Config{Seed: 42, Quick: true})
		// Pre-build the workloads outside the timed region.
		for _, w := range []string{"TPC-H", "TPC-H ColumnStore", "TPC-DS", "REAL-1", "REAL-2", "REAL-3"} {
			suite.Workload(w)
		}
	})
	return suite
}

func benchFigure(b *testing.B, id string) {
	s := benchSuite()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Run(id); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig08ExchangeLag(b *testing.B)           { benchFigure(b, "Fig8") }
func BenchmarkFig11TwoPhaseHashAgg(b *testing.B)       { benchFigure(b, "Fig11") }
func BenchmarkFig12WeightedProgress(b *testing.B)      { benchFigure(b, "Fig12") }
func BenchmarkFig13EstimatorGap(b *testing.B)          { benchFigure(b, "Fig13") }
func BenchmarkFig14RefinementBounding(b *testing.B)    { benchFigure(b, "Fig14") }
func BenchmarkFig15PerOperatorRefinement(b *testing.B) { benchFigure(b, "Fig15") }
func BenchmarkFig16OperatorWeights(b *testing.B)       { benchFigure(b, "Fig16") }
func BenchmarkFig17BlockingOperators(b *testing.B)     { benchFigure(b, "Fig17") }
func BenchmarkFig18ColumnstoreDesign(b *testing.B)     { benchFigure(b, "Fig18") }
func BenchmarkFig19OperatorFrequency(b *testing.B)     { benchFigure(b, "Fig19") }
func BenchmarkFig20PerOperatorByDesign(b *testing.B)   { benchFigure(b, "Fig20") }
func BenchmarkTableA1Bounds(b *testing.B)              { benchFigure(b, "TableA1") }

// BenchmarkEstimatorSnapshot measures the client-side estimation hot path:
// one full LQS estimate over one DMV snapshot of a mid-size plan — the
// work the real client performs every 500 ms poll.
func BenchmarkEstimatorSnapshot(b *testing.B) {
	w := benchSuite().Workload("TPC-H")
	q := w.Queries[4] // Q5: five joins, bitmap, exchange
	p := plan.Finalize(q.Build(w.Builder()))
	opt.NewEstimator(w.DB.Catalog).Estimate(p)
	clock := sim.NewClock()
	poller := dmv.NewPoller(clock, 200*time.Microsecond)
	w.DB.ColdStart()
	query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
	poller.Register(query)
	query.Run()
	tr := poller.Finish(query)
	snap := tr.Snapshots[len(tr.Snapshots)/2]
	est := progress.NewEstimator(p, w.DB.Catalog, progress.LQSOptions())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		est.Estimate(snap)
	}
}

// BenchmarkQueryExecution measures raw engine throughput on TPC-H Q1.
func BenchmarkQueryExecution(b *testing.B) {
	w := benchSuite().Workload("TPC-H")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := plan.Finalize(w.Queries[0].Build(w.Builder()))
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		w.DB.ColdStart()
		exec.NewQuery(p, w.DB, opt.DefaultCostModel(), sim.NewClock()).Run()
	}
}

// BenchmarkTracedExecution measures execution with the DMV poller attached
// (the overhead of observability).
func BenchmarkTracedExecution(b *testing.B) {
	w := benchSuite().Workload("TPC-H")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var q workload.Query = w.Queries[0]
		p := plan.Finalize(q.Build(w.Builder()))
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		clock := sim.NewClock()
		poller := dmv.NewPoller(clock, 200*time.Microsecond)
		w.DB.ColdStart()
		query := exec.NewQuery(p, w.DB, opt.DefaultCostModel(), clock)
		poller.Register(query)
		query.Run()
		poller.Finish(query)
	}
}

// --- Batch-vs-row micro-benchmarks -----------------------------------------
//
// Each pair runs one query end to end in the classic row-at-a-time engine
// and in the vectorized batch engine (batch size 1024). Results and final
// counters are identical (see the exec batch differential battery); the
// pair isolates the wall-clock effect of vectorization — compiled
// predicates, page-run scans, and per-batch checkpointing.

// benchQuery runs one named workload query end to end at the given batch
// size (0 = row mode) per iteration.
func benchQuery(b *testing.B, w *workload.Workload, name string, batch int) {
	var q workload.Query
	for _, c := range w.Queries {
		if c.Name == name {
			q = c
		}
	}
	if q.Build == nil {
		b.Fatalf("no query %q in %s", name, w.Name)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := plan.Finalize(q.Build(w.Builder()))
		opt.NewEstimator(w.DB.Catalog).Estimate(p)
		w.DB.ColdStart()
		exec.NewQueryBatch(p, w.DB, opt.DefaultCostModel(), sim.NewClock(), 1, batch).Run()
	}
}

// BatchBenchSize is the batch size the batch-mode micro-benchmarks (and
// lqsbench's batch section) use: the engine's columnstore row-group size,
// so a scan batch aligns with a storage row group.
const BatchBenchSize = 1024

func BenchmarkQ6RowMode(b *testing.B) {
	benchQuery(b, benchSuite().Workload("TPC-H"), "Q6", 0)
}

func BenchmarkQ6BatchMode(b *testing.B) {
	benchQuery(b, benchSuite().Workload("TPC-H"), "Q6", BatchBenchSize)
}

func BenchmarkQ1RowMode(b *testing.B) {
	benchQuery(b, benchSuite().Workload("TPC-H"), "Q1", 0)
}

func BenchmarkQ1BatchMode(b *testing.B) {
	benchQuery(b, benchSuite().Workload("TPC-H"), "Q1", BatchBenchSize)
}

func BenchmarkQ6ColumnstoreRowMode(b *testing.B) {
	benchQuery(b, benchSuite().Workload("TPC-H ColumnStore"), "Q6", 0)
}

func BenchmarkQ6ColumnstoreBatchMode(b *testing.B) {
	benchQuery(b, benchSuite().Workload("TPC-H ColumnStore"), "Q6", BatchBenchSize)
}
