// Command lqsmon is the text-mode Live Query Statistics monitor (the SSMS
// visualization of the paper's §2.3): it runs a workload query against the
// simulated engine and redraws the plan with per-operator progress bars,
// row counts, and the overall query progress at every poll interval.
//
// Usage:
//
//	lqsmon                         # TPC-H Q5 with live display
//	lqsmon -workload tpcds -q Q21  # a specific query
//	lqsmon -interval 2ms -plain    # coarser polling, no screen clearing
//	lqsmon -deadline 50ms          # abort at a virtual-time deadline
//	lqsmon -explain                # per-operator estimate decomposition
//	lqsmon -dop 4                  # run parallel zones with 4 workers
//	lqsmon -dop 4 -threads        # …and show the per-thread drill-down
//	lqsmon -chaos 0.002            # inject seeded cross-layer faults at
//	                               # this rate; degraded frames are marked
//	lqsmon -list                   # list available queries
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lqs/internal/chaos"
	"lqs/internal/engine/exec"
	"lqs/internal/lqs"
	"lqs/internal/progress"
	"lqs/internal/workload"
)

func main() {
	var (
		wname    = flag.String("workload", "tpch", "workload: tpch, tpch-cs, tpcds, real1, real2, real3")
		qname    = flag.String("q", "Q5", "query name within the workload")
		interval = flag.Duration("interval", time.Millisecond, "virtual poll interval")
		deadline = flag.Duration("deadline", 0, "virtual-time deadline; 0 means none")
		plain    = flag.Bool("plain", false, "append frames instead of redrawing in place")
		explain  = flag.Bool("explain", false, "render the estimator's per-operator decomposition under each frame")
		dop      = flag.Int("dop", 1, "degree of parallelism for parallel zones (1 = serial)")
		threads  = flag.Bool("threads", false, "render the per-thread DMV drill-down under each frame")
		seed     = flag.Uint64("seed", 42, "workload seed")
		list     = flag.Bool("list", false, "list query names and exit")
		rate     = flag.Float64("chaos", 0, "cross-layer fault rate (0 disables); scales every chaos injector via chaos.RateConfig")
		chaosSd  = flag.Uint64("chaos-seed", 42, "master seed for -chaos fault schedules")
	)
	flag.Parse()

	var w *workload.Workload
	switch strings.ToLower(*wname) {
	case "tpch":
		w = workload.TPCH(*seed, workload.TPCHRowstore)
	case "tpch-cs":
		w = workload.TPCH(*seed, workload.TPCHColumnstore)
	case "tpcds":
		w = workload.TPCDS(*seed)
	case "real1":
		w = workload.REAL1(*seed)
	case "real2":
		w = workload.REAL2(*seed)
	case "real3":
		w = workload.REAL3(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wname)
		os.Exit(1)
	}

	if *list {
		for _, q := range w.Queries {
			fmt.Println(q.Name)
		}
		return
	}

	var query *workload.Query
	for i := range w.Queries {
		if strings.EqualFold(w.Queries[i].Name, *qname) {
			query = &w.Queries[i]
		}
	}
	if query == nil {
		fmt.Fprintf(os.Stderr, "no query %q in %s (use -list)\n", *qname, w.Name)
		os.Exit(1)
	}

	var plan *chaos.Plan
	if *rate > 0 {
		plan = chaos.NewPlan(chaos.RateConfig(*rate, *chaosSd))
		w.DB.Pool.SetFaultInjector(plan.StorageInjector())
	}
	s := lqs.StartDOP(w.DB, query.Build(w.Builder()), *dop, progress.LQSOptions())
	if plan != nil {
		s.Query.Ctx.Chaos = plan.ExecInjector()
		s.SetSnapshotFault(plan.PollFault())
	}
	if *deadline > 0 {
		s.Query.Ctx.Deadline = *deadline
	}
	frames := 0
	frame := func(q *lqs.QuerySnapshot) {
		frames++
		if !*plain {
			fmt.Print("\033[H\033[2J") // clear screen, home cursor
		}
		fmt.Printf("%s %s  (virtual poll every %v, dop=%d)\n\n", w.Name, query.Name, *interval, *dop)
		fmt.Print(s.Render(q))
		if *threads {
			if drill := s.RenderThreads(q); drill != "" {
				fmt.Println()
				fmt.Print(drill)
			}
		}
		if *explain {
			fmt.Println()
			fmt.Print(s.Explain().Render())
		}
		if !*plain && q.State == exec.StateRunning {
			time.Sleep(40 * time.Millisecond) // pace the animation for humans
		}
	}
	rows, err := s.Monitor(*interval, func(q *lqs.QuerySnapshot) {
		// Terminal states render below, from the flight recorder.
		if q.State == exec.StateRunning {
			frame(q)
		}
	})
	// The query may have reached its terminal state between polls — or
	// before the first one — so the closing frame comes from the session
	// flight recorder, which always retains the final snapshot, rather
	// than from whatever the live callback happened to see.
	if last := s.Last(); last != nil {
		frame(last)
	}
	chaosSummary := func() {
		if plan == nil {
			return
		}
		if fi := w.DB.Pool.FaultInjector(); fi != nil {
			st := fi.Stats()
			fmt.Printf("chaos storage faults: %d reads, %d transients, %d retries, %d permanents\n",
				st.Reads, st.Transients, st.Retries, st.Permanents)
		}
		fmt.Printf("chaos: rate=%g seed=%d (same flags replay the same fault schedule)\n", *rate, *chaosSd)
	}
	if err != nil {
		fmt.Printf("\nquery %s after %d rows in %v virtual time (%d frames): %v\n",
			s.State(), rows, s.Query.Ctx.Clock.Now(), frames, err)
		chaosSummary()
		os.Exit(1)
	}
	fmt.Printf("\nquery returned %d rows in %v virtual time (%d frames)\n",
		rows, s.Query.Ctx.Clock.Now(), frames)
	chaosSummary()
}
