// Command lqsbench regenerates the paper's evaluation (Section 5): every
// figure and the Appendix A table, as text reports.
//
// Usage:
//
//	lqsbench                 # run every experiment, quick mode
//	lqsbench -run Fig14      # one experiment
//	lqsbench -full           # trace every query of every workload
//	lqsbench -seed 7         # different data/workload seed
//	lqsbench -parallel 8     # trace with 8 workers (0 = GOMAXPROCS)
//	lqsbench -dop 4          # run queries with intra-query parallel zones
//	lqsbench -batch 1024     # row-vs-batch wall-clock speedups (vectorized
//	                         # execution; results/counters byte-identical)
//	lqsbench -bench-json -   # machine-readable timings on stdout; -dop > 1
//	                         # adds per-query virtual-time speedups and
//	                         # -batch > 0 the wall-clock batch section
//	lqsbench -list           # list experiment IDs
//
//	lqsbench -run none -trace-dir out   # per-query Chrome traces + explains
//	lqsbench -metrics                   # dump the metrics registry at exit
//	lqsbench -chaos                     # run the chaos differential battery
//	lqsbench -chaos -full -chaos-seed 7 # full fault grid under another seed
//
//	lqsbench -accuracy                      # estimator-accuracy suite
//	                                        # (TPC-H+TPC-DS x TGN/DNE/LQS/ENS)
//	lqsbench -accuracy -acc-json ACC.json   # write the ACC_*.json artifact
//	lqsbench -accuracy -full                # every query of both workloads
//
// Output is byte-identical at every -parallel setting: workers trace
// against private regenerated workloads and results merge in query order.
// That extends to -trace-dir: the emitted trace files carry virtual
// timestamps only, so they are byte-identical across serial and parallel
// runs of the same seed.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"strings"
	"time"

	"lqs/internal/accuracy"
	"lqs/internal/chaos"
	"lqs/internal/engine/dmv"
	"lqs/internal/experiments"
	"lqs/internal/metrics"
	"lqs/internal/obs"
	"lqs/internal/progress"
	"lqs/internal/trace"
	"lqs/internal/workload"
)

// phaseBench is one experiment's timing record in the -bench-json report.
type phaseBench struct {
	ID            string  `json:"id"`
	WallSeconds   float64 `json:"wall_seconds"`
	QueriesTraced int64   `json:"queries_traced"`
	// SerialSeconds and Speedup are present only when the run was
	// parallel and a serial reference pass was taken.
	SerialSeconds float64 `json:"serial_seconds,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
}

// benchReport is the top-level -bench-json document.
type benchReport struct {
	Seed        uint64       `json:"seed"`
	Quick       bool         `json:"quick"`
	Parallel    int          `json:"parallel"`
	Workers     int          `json:"workers"`
	WallSeconds float64      `json:"wall_seconds"`
	Phases      []phaseBench `json:"phases"`
	// DOP and DOPSpeedups report intra-query parallelism: each traced
	// query's simulated elapsed time serially and at -dop, present only
	// when -dop > 1.
	DOP         int                  `json:"dop,omitempty"`
	DOPSpeedups []metrics.DOPSpeedup `json:"dop_speedups,omitempty"`
	// Batch and BatchSpeedups report vectorized execution: each query's
	// wall-clock time in row mode vs batch mode at -batch, present only
	// when -batch > 0. Unlike the DOP section these are real times — batch
	// mode leaves the simulated clock untouched and buys host CPU instead.
	Batch         int                    `json:"batch,omitempty"`
	BatchSpeedups []metrics.BatchSpeedup `json:"batch_speedups,omitempty"`
}

func main() {
	var (
		run      = flag.String("run", "all", "experiment ID to run (Fig8..Fig20, TableA1) or 'all'")
		full     = flag.Bool("full", false, "trace every query (default subsamples the large REAL workloads)")
		seed     = flag.Uint64("seed", 42, "workload generation seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		parallel = flag.Int("parallel", 1, "tracing workers: 1 = serial, 0 = GOMAXPROCS")
		dop      = flag.Int("dop", 1, "intra-query degree of parallelism for -trace-dir runs and the -bench-json speedup section (1 = serial)")
		batch    = flag.Int("batch", 0, "vectorized batch size: measure row-vs-batch wall-clock speedups on the -trace-workload (0 = off)")
		benchOut = flag.String("bench-json", "", "write machine-readable timings to this file ('-' = stdout); parallel runs add a serial reference pass for speedup")
		traceDir = flag.String("trace-dir", "", "emit per-query Chrome trace-event JSON and estimator explains into this directory")
		traceWl  = flag.String("trace-workload", "tpch", "workload to trace for -trace-dir: tpch, tpch-cs, tpcds, real1, real2, real3")
		traceLim = flag.Int("trace-limit", 4, "queries to trace for -trace-dir (0 = all)")
		dumpObs  = flag.Bool("metrics", false, "dump the metrics registry (pool counters, estimator-error histograms) on exit")
		chaosRun = flag.Bool("chaos", false, "run the chaos differential battery (TPC-H/TPC-DS x DOP x fault-rate grid) and exit non-zero on contract violations")
		chaosSd  = flag.Uint64("chaos-seed", 42, "master seed for the -chaos battery")
		accRun   = flag.Bool("accuracy", false, "run the estimator-accuracy suite (TPC-H/TPC-DS x TGN/DNE/LQS/ENS) and exit non-zero on ceiling breaches")
		accOut   = flag.String("acc-json", "", "with -accuracy: write the ACC_*.json trajectory to this file ('-' = stdout)")
		accLabel = flag.String("acc-label", "dev", "with -accuracy: label stamped into the report")
	)
	flag.Parse()

	if *accRun {
		rep, err := accuracy.Run(accuracy.Config{
			Label:    *accLabel,
			Seed:     *seed,
			Full:     *full,
			Parallel: *parallel,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if *accOut != "" {
			buf, err := rep.JSON()
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			if *accOut == "-" {
				os.Stdout.Write(buf)
			} else if err := os.WriteFile(*accOut, buf, 0o644); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
		if viol := rep.Violations(accuracy.DefaultCeilings()); len(viol) > 0 {
			fmt.Println("\naccuracy ceiling breaches:")
			for _, v := range viol {
				fmt.Println("  " + v)
			}
			os.Exit(1)
		}
		return
	}

	if *chaosRun {
		cfg := chaos.GridConfig{Seed: *chaosSd, RetryOnCrash: 2}
		if !*full {
			// Quick grid: a workload+DOP subset dense enough to exercise every
			// layer; -full covers both workloads at DOP 1/2/4 over the full
			// rate grid.
			cfg.Workloads = []string{"tpch"}
			cfg.QueriesPerWorkload = 2
			cfg.DOPs = []int{1, 4}
			cfg.Rates = []float64{0, 0.002}
		}
		rep, err := chaos.Run(cfg)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Print(rep.Render())
		if len(rep.Violations()) > 0 {
			os.Exit(1)
		}
		return
	}

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	suite := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: !*full, Parallel: *parallel})
	ids := experiments.IDs()
	if strings.EqualFold(*run, "none") {
		ids = nil
	} else if !strings.EqualFold(*run, "all") {
		ids = strings.Split(*run, ",")
	}

	if *traceDir != "" {
		if err := emitTraces(*traceDir, *traceWl, *seed, *traceLim, *parallel, *dop); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	if *dumpObs {
		defer func() { fmt.Print(obs.Default().Dump()) }()
	}

	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{Seed: *seed, Quick: !*full, Parallel: *parallel, Workers: workers}
	totalStart := time.Now()
	for _, id := range ids {
		metrics.ResetTracedQueries()
		start := time.Now()
		res, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", res.ID, wall.Round(time.Millisecond))
		report.Phases = append(report.Phases, phaseBench{
			ID:            res.ID,
			WallSeconds:   wall.Seconds(),
			QueriesTraced: metrics.TracedQueries(),
		})
	}
	report.WallSeconds = time.Since(totalStart).Seconds()

	if *batch > 0 {
		// Wall-clock row-vs-batch speedups on the -trace-workload: batch
		// mode produces byte-identical results and counters, so the only
		// observable difference worth reporting is host CPU.
		w, err := workloadByName(*traceWl, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		limit := 0
		if !*full {
			limit = 8
		}
		report.Batch = *batch
		report.BatchSpeedups = metrics.MeasureBatchSpeedups(w, *batch, limit)
		fmt.Printf("batch-mode wall-clock speedups (%s, batch size %d, best of 3):\n", w.Name, *batch)
		for _, s := range report.BatchSpeedups {
			fmt.Printf("  %-12s row %9.3f ms   batch %9.3f ms   %5.2fx\n",
				s.Query, float64(s.RowNS)/1e6, float64(s.BatchNS)/1e6, s.Speedup)
		}
		fmt.Println()
	}

	if *benchOut == "" {
		return
	}
	if *dop > 1 {
		// Virtual-time speedups from intra-query parallelism: each query of
		// the -trace-workload runs serially and at -dop on the simulated
		// clock, so the ratio is deterministic and independent of host load.
		w, err := workloadByName(*traceWl, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		limit := 0
		if !*full {
			limit = 8
		}
		report.DOP = *dop
		report.DOPSpeedups = metrics.MeasureDOPSpeedups(w, *dop, limit)
	}
	if workers > 1 {
		// Serial reference pass on a fresh suite (fresh workload cache, so
		// generation cost is paid equally by both passes).
		ref := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: !*full, Parallel: 1})
		for i, id := range ids {
			metrics.ResetTracedQueries()
			start := time.Now()
			if _, err := ref.Run(strings.TrimSpace(id)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			serial := time.Since(start).Seconds()
			report.Phases[i].SerialSeconds = serial
			if report.Phases[i].WallSeconds > 0 {
				report.Phases[i].Speedup = serial / report.Phases[i].WallSeconds
			}
		}
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *benchOut == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*benchOut, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

// workloadByName builds the named workload at the given seed.
func workloadByName(name string, seed uint64) (*workload.Workload, error) {
	switch strings.ToLower(name) {
	case "tpch":
		return workload.TPCH(seed, workload.TPCHRowstore), nil
	case "tpch-cs":
		return workload.TPCH(seed, workload.TPCHColumnstore), nil
	case "tpcds":
		return workload.TPCDS(seed), nil
	case "real1":
		return workload.REAL1(seed), nil
	case "real2":
		return workload.REAL2(seed), nil
	case "real3":
		return workload.REAL3(seed), nil
	}
	return nil, fmt.Errorf("unknown workload %q", name)
}

// emitTraces runs the workload with event tracing on and writes, per query,
// a validated Chrome trace-event file (<workload>-<query>.trace.json, opens
// directly in Perfetto) and the estimator's mid-query decomposition
// (<workload>-<query>.explain.txt). Estimator-error and pool metrics feed
// the default metrics registry for -metrics.
func emitTraces(dir, wname string, seed uint64, limit, parallel, dop int) error {
	w, err := workloadByName(wname, seed)
	if err != nil {
		return err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	reg := obs.Default()
	errHist := reg.Histogram("estimator/error_count/"+w.Name, nil)
	r := metrics.Runner{Limit: limit, Parallel: parallel, EventCap: -1, DOP: dop}
	pid := 0
	var files int
	r.ForEachArtifacts(w, func(a metrics.TraceArtifacts) {
		if err != nil {
			return
		}
		base := filepath.Join(dir, fmt.Sprintf("%s-%s", w.Name, a.Query.Name))
		data, cerr := trace.Chrome(a.Events, w.Name+" "+a.Query.Name, pid)
		pid++
		if cerr == nil {
			cerr = trace.ValidateChrome(data)
		}
		if cerr == nil {
			cerr = os.WriteFile(base+".trace.json", data, 0o644)
		}
		if cerr != nil {
			err = fmt.Errorf("%s: %w", a.Query.Name, cerr)
			return
		}
		err = os.WriteFile(base+".explain.txt", []byte(midExplain(w, a)), 0o644)
		if ec, ok := metrics.ErrorCount(a.Plan, a.Trace, w, progress.LQSOptions()); ok {
			errHist.Observe(ec)
		}
		files += 2
	})
	if err != nil {
		return err
	}
	w.DB.Pool.Publish(reg)
	fmt.Printf("wrote %d trace artifacts for %s to %s\n\n", files, w.Name, dir)
	return nil
}

// midExplain replays a query's DMV trace to its midpoint and renders the
// estimator decomposition there — the most informative single frame, with
// refinement underway but the query not yet done.
func midExplain(w *workload.Workload, a metrics.TraceArtifacts) string {
	est := progress.NewEstimator(a.Plan, w.DB.Catalog, progress.LQSOptions())
	snaps := append(append([]*dmv.Snapshot(nil), a.Trace.Snapshots...), a.Trace.Final)
	mid := len(snaps) / 2
	for _, s := range snaps[:mid] {
		est.Estimate(s)
	}
	x, _ := est.Explain(snaps[mid])
	return x.Render()
}
