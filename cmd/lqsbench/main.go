// Command lqsbench regenerates the paper's evaluation (Section 5): every
// figure and the Appendix A table, as text reports.
//
// Usage:
//
//	lqsbench                 # run every experiment, quick mode
//	lqsbench -run Fig14      # one experiment
//	lqsbench -full           # trace every query of every workload
//	lqsbench -seed 7         # different data/workload seed
//	lqsbench -parallel 8     # trace with 8 workers (0 = GOMAXPROCS)
//	lqsbench -bench-json -   # machine-readable timings on stdout
//	lqsbench -list           # list experiment IDs
//
// Output is byte-identical at every -parallel setting: workers trace
// against private regenerated workloads and results merge in query order.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"time"

	"lqs/internal/experiments"
	"lqs/internal/metrics"
)

// phaseBench is one experiment's timing record in the -bench-json report.
type phaseBench struct {
	ID            string  `json:"id"`
	WallSeconds   float64 `json:"wall_seconds"`
	QueriesTraced int64   `json:"queries_traced"`
	// SerialSeconds and Speedup are present only when the run was
	// parallel and a serial reference pass was taken.
	SerialSeconds float64 `json:"serial_seconds,omitempty"`
	Speedup       float64 `json:"speedup,omitempty"`
}

// benchReport is the top-level -bench-json document.
type benchReport struct {
	Seed        uint64       `json:"seed"`
	Quick       bool         `json:"quick"`
	Parallel    int          `json:"parallel"`
	Workers     int          `json:"workers"`
	WallSeconds float64      `json:"wall_seconds"`
	Phases      []phaseBench `json:"phases"`
}

func main() {
	var (
		run      = flag.String("run", "all", "experiment ID to run (Fig8..Fig20, TableA1) or 'all'")
		full     = flag.Bool("full", false, "trace every query (default subsamples the large REAL workloads)")
		seed     = flag.Uint64("seed", 42, "workload generation seed")
		list     = flag.Bool("list", false, "list experiment IDs and exit")
		parallel = flag.Int("parallel", 1, "tracing workers: 1 = serial, 0 = GOMAXPROCS")
		benchOut = flag.String("bench-json", "", "write machine-readable timings to this file ('-' = stdout); parallel runs add a serial reference pass for speedup")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	suite := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: !*full, Parallel: *parallel})
	ids := experiments.IDs()
	if !strings.EqualFold(*run, "all") {
		ids = strings.Split(*run, ",")
	}

	workers := *parallel
	if workers == 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	report := benchReport{Seed: *seed, Quick: !*full, Parallel: *parallel, Workers: workers}
	totalStart := time.Now()
	for _, id := range ids {
		metrics.ResetTracedQueries()
		start := time.Now()
		res, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		wall := time.Since(start)
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", res.ID, wall.Round(time.Millisecond))
		report.Phases = append(report.Phases, phaseBench{
			ID:            res.ID,
			WallSeconds:   wall.Seconds(),
			QueriesTraced: metrics.TracedQueries(),
		})
	}
	report.WallSeconds = time.Since(totalStart).Seconds()

	if *benchOut == "" {
		return
	}
	if workers > 1 {
		// Serial reference pass on a fresh suite (fresh workload cache, so
		// generation cost is paid equally by both passes).
		ref := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: !*full, Parallel: 1})
		for i, id := range ids {
			metrics.ResetTracedQueries()
			start := time.Now()
			if _, err := ref.Run(strings.TrimSpace(id)); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			serial := time.Since(start).Seconds()
			report.Phases[i].SerialSeconds = serial
			if report.Phases[i].WallSeconds > 0 {
				report.Phases[i].Speedup = serial / report.Phases[i].WallSeconds
			}
		}
	}
	buf, err := json.MarshalIndent(&report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *benchOut == "-" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*benchOut, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
