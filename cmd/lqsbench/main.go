// Command lqsbench regenerates the paper's evaluation (Section 5): every
// figure and the Appendix A table, as text reports.
//
// Usage:
//
//	lqsbench                 # run every experiment, quick mode
//	lqsbench -run Fig14      # one experiment
//	lqsbench -full           # trace every query of every workload
//	lqsbench -seed 7         # different data/workload seed
//	lqsbench -list           # list experiment IDs
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"lqs/internal/experiments"
)

func main() {
	var (
		run  = flag.String("run", "all", "experiment ID to run (Fig8..Fig20, TableA1) or 'all'")
		full = flag.Bool("full", false, "trace every query (default subsamples the large REAL workloads)")
		seed = flag.Uint64("seed", 42, "workload generation seed")
		list = flag.Bool("list", false, "list experiment IDs and exit")
	)
	flag.Parse()

	if *list {
		for _, id := range experiments.IDs() {
			fmt.Println(id)
		}
		return
	}

	suite := experiments.NewSuite(experiments.Config{Seed: *seed, Quick: !*full})
	ids := experiments.IDs()
	if !strings.EqualFold(*run, "all") {
		ids = strings.Split(*run, ",")
	}
	for _, id := range ids {
		start := time.Now()
		res, err := suite.Run(strings.TrimSpace(id))
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println(res.Render())
		fmt.Printf("(%s completed in %v)\n\n", res.ID, time.Since(start).Round(time.Millisecond))
	}
}
