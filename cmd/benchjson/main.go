// Command benchjson converts `go test -bench` text output into a stable
// JSON artifact so benchmark results can be committed and compared across
// PRs (the wall-clock trajectory: BENCH_pr7.json, BENCH_pr8.json, ...).
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem . | go run ./cmd/benchjson -label pr7 -o BENCH_pr7.json
//
// Besides the raw per-benchmark numbers it derives row-vs-batch speedups
// from every <Name>RowMode / <Name>BatchMode benchmark pair, so the
// vectorization headline is readable straight from the artifact.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"runtime"
	"strconv"
	"strings"
	"time"
)

// Benchmark is one parsed `go test -bench` result line.
type Benchmark struct {
	Name     string  `json:"name"`
	Procs    int     `json:"procs,omitempty"`
	Iters    int64   `json:"iters"`
	NsPerOp  float64 `json:"ns_per_op"`
	BPerOp   float64 `json:"bytes_per_op,omitempty"`
	AllocsOp int64   `json:"allocs_per_op,omitempty"`
}

// Speedup pairs a RowMode benchmark with its BatchMode counterpart.
type Speedup struct {
	Name    string  `json:"name"`
	RowNS   float64 `json:"row_ns"`
	BatchNS float64 `json:"batch_ns"`
	Speedup float64 `json:"speedup"`
}

// Report is the committed artifact.
type Report struct {
	Label      string      `json:"label"`
	Generated  string      `json:"generated"`
	GoVersion  string      `json:"go_version"`
	GOOS       string      `json:"goos"`
	GOARCH     string      `json:"goarch"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"batch_speedups,omitempty"`
}

// benchLine matches e.g.
//
//	BenchmarkQ6RowMode-8   100   5067 ns/op   1234 B/op   56 allocs/op
var benchLine = regexp.MustCompile(
	`^Benchmark(\S+?)(?:-(\d+))?\s+(\d+)\s+([\d.]+) ns/op(?:\s+([\d.]+) B/op)?(?:\s+(\d+) allocs/op)?`)

func parse(lines *bufio.Scanner) ([]Benchmark, error) {
	var out []Benchmark
	for lines.Scan() {
		m := benchLine.FindStringSubmatch(lines.Text())
		if m == nil {
			continue
		}
		b := Benchmark{Name: m[1]}
		b.Procs, _ = strconv.Atoi(m[2])
		b.Iters, _ = strconv.ParseInt(m[3], 10, 64)
		b.NsPerOp, _ = strconv.ParseFloat(m[4], 64)
		if m[5] != "" {
			b.BPerOp, _ = strconv.ParseFloat(m[5], 64)
		}
		if m[6] != "" {
			b.AllocsOp, _ = strconv.ParseInt(m[6], 10, 64)
		}
		out = append(out, b)
	}
	return out, lines.Err()
}

// deriveSpeedups pairs <Name>RowMode with <Name>BatchMode benchmarks.
func deriveSpeedups(benches []Benchmark) []Speedup {
	rows := map[string]float64{}
	for _, b := range benches {
		if name, ok := strings.CutSuffix(b.Name, "RowMode"); ok {
			rows[name] = b.NsPerOp
		}
	}
	var out []Speedup
	for _, b := range benches {
		name, ok := strings.CutSuffix(b.Name, "BatchMode")
		if !ok {
			continue
		}
		rowNS, ok := rows[name]
		if !ok || b.NsPerOp <= 0 {
			continue
		}
		out = append(out, Speedup{Name: name, RowNS: rowNS, BatchNS: b.NsPerOp, Speedup: rowNS / b.NsPerOp})
	}
	return out
}

func main() {
	label := flag.String("label", "dev", "trajectory label stamped into the artifact (e.g. pr7)")
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	benches, err := parse(sc)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: read: %v\n", err)
		os.Exit(1)
	}
	if len(benches) == 0 {
		fmt.Fprintln(os.Stderr, "benchjson: no benchmark lines on stdin")
		os.Exit(1)
	}
	rep := Report{
		Label:      *label,
		Generated:  time.Now().UTC().Format(time.RFC3339),
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		Benchmarks: benches,
		Speedups:   deriveSpeedups(benches),
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: marshal: %v\n", err)
		os.Exit(1)
	}
	data = append(data, '\n')
	if *out == "" {
		os.Stdout.Write(data)
		return
	}
	if err := os.WriteFile(*out, data, 0o644); err != nil {
		fmt.Fprintf(os.Stderr, "benchjson: %v\n", err)
		os.Exit(1)
	}
	fmt.Printf("benchjson: wrote %s (%d benchmarks, %d speedup pairs)\n", *out, len(benches), len(rep.Speedups))
}
