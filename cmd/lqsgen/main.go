// Command lqsgen inspects the evaluation workloads: table inventories,
// query lists, and estimated showplans (with optimizer cardinalities and
// per-row costs) for any query.
//
// Usage:
//
//	lqsgen -workload tpch                 # table + query inventory
//	lqsgen -workload tpcds -explain Q21   # showplan with estimates
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"lqs/internal/opt"
	"lqs/internal/plan"
	"lqs/internal/workload"
)

func main() {
	var (
		wname   = flag.String("workload", "tpch", "workload: tpch, tpch-cs, tpcds, real1, real2, real3")
		explain = flag.String("explain", "", "print the estimated plan for this query")
		seed    = flag.Uint64("seed", 42, "workload seed")
	)
	flag.Parse()

	var w *workload.Workload
	switch strings.ToLower(*wname) {
	case "tpch":
		w = workload.TPCH(*seed, workload.TPCHRowstore)
	case "tpch-cs":
		w = workload.TPCH(*seed, workload.TPCHColumnstore)
	case "tpcds":
		w = workload.TPCDS(*seed)
	case "real1":
		w = workload.REAL1(*seed)
	case "real2":
		w = workload.REAL2(*seed)
	case "real3":
		w = workload.REAL3(*seed)
	default:
		fmt.Fprintf(os.Stderr, "unknown workload %q\n", *wname)
		os.Exit(1)
	}

	if *explain != "" {
		for _, q := range w.Queries {
			if strings.EqualFold(q.Name, *explain) {
				p := plan.Finalize(q.Build(w.Builder()))
				opt.NewEstimator(w.DB.Catalog).Estimate(p)
				fmt.Printf("%s %s:\n%s\n", w.Name, q.Name, p)
				p.Walk(func(n *plan.Node) {
					fmt.Printf("  node %-3d est_rows=%-10.1f cpu/row=%-8.0f io/row=%-8.0f rebinds=%.0f\n",
						n.ID, n.EstRows, n.EstCPUPerRow, n.EstIOPerRow, n.EstRebinds)
				})
				return
			}
		}
		fmt.Fprintf(os.Stderr, "no query %q in %s\n", *explain, w.Name)
		os.Exit(1)
	}

	fmt.Printf("workload %s: %d tables, %d queries\n\ntables:\n", w.Name, len(w.DB.Catalog.Tables()), len(w.Queries))
	for _, t := range w.DB.Catalog.Tables() {
		ix := make([]string, 0, len(t.Indexes))
		for _, i := range t.Indexes {
			ix = append(ix, i.Name)
		}
		fmt.Printf("  %-16s %8d rows  %5d pages  indexes: %s\n", t.Name, t.RowCount, t.Pages, strings.Join(ix, ", "))
	}
	fmt.Println("\nqueries:")
	for _, q := range w.Queries {
		fmt.Printf("  %s\n", q.Name)
	}
}
