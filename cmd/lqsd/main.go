// Command lqsd is the Live Query Statistics monitoring server: it hosts
// many concurrent monitored queries behind a JSON API and exposes the DMV
// counter surface as Prometheus metric families on /metrics.
//
// Usage:
//
//	lqsd                           # listen on :8321, run queries at full speed
//	lqsd -addr :9090               # another port
//	lqsd -pace 200us               # sleep 200µs per 1ms of virtual time, so
//	                               # remote observers watch queries run
//	lqsd -max-concurrent 16        # admission-control limit
//	lqsd -chaos 0.01               # cross-layer fault injection at rate 0.01
//	lqsd -chaos 0.01 -chaos-seed 7 # ... with a reproducible fault sequence
//
// Example session:
//
//	curl -s -X POST localhost:8321/queries -d '{"workload":"tpch","query":"Q1"}'
//	curl -s localhost:8321/queries/1?explain=1
//	curl -s -N localhost:8321/queries/1/stream?interval_ms=100
//	curl -s localhost:8321/metrics | grep lqs_query_progress
//	curl -s -X DELETE localhost:8321/queries/1
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lqs/internal/chaos"
	"lqs/internal/obs"
	"lqs/internal/server"
	"lqs/internal/sim"
)

func main() {
	var (
		addr      = flag.String("addr", ":8321", "listen address")
		maxConc   = flag.Int("max-concurrent", 8, "admission control: max queries running at once")
		maxFin    = flag.Int("max-finished", 64, "terminal queries retained before auto-reap")
		pace      = flag.Duration("pace", 200*time.Microsecond, "wall-clock sleep per pace-interval of virtual time (0 = full speed)")
		paceIvl   = flag.Duration("pace-interval", time.Millisecond, "virtual-time interval between pacing sleeps")
		tick      = flag.Duration("stream-tick", 25*time.Millisecond, "shared SSE poll cadence per query")
		poll      = flag.Duration("poll-interval", 0, "virtual DMV flight-recorder interval (0 = the paper's 500ms)")
		histCap   = flag.Int("history-cap", 256, "flight-recorder snapshots retained per query")
		maxDOP    = flag.Int("max-dop", 8, "max per-query degree of parallelism")
		drainFor  = flag.Duration("drain-timeout", 10*time.Second, "graceful-drain window before running queries are cancelled")
		chaosRate = flag.Float64("chaos", 0, "cross-layer fault-injection rate (0 = off); every hosted query draws an independent derived fault stream")
		chaosSeed = flag.Uint64("chaos-seed", 1, "master chaos seed (with -chaos)")
	)
	flag.Parse()

	var chaosCfg *chaos.Config
	if *chaosRate > 0 {
		cfg := chaos.RateConfig(*chaosRate, *chaosSeed)
		chaosCfg = &cfg
	}

	srv := server.New(server.Config{
		MaxConcurrent: *maxConc,
		MaxFinished:   *maxFin,
		Pace:          *pace,
		PaceInterval:  sim.Duration(*paceIvl),
		StreamTick:    *tick,
		PollInterval:  sim.Duration(*poll),
		HistoryCap:    *histCap,
		MaxDOP:        *maxDOP,
		Metrics:       obs.NewRegistry(),
		Chaos:         chaosCfg,
	})
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	errs := make(chan error, 1)
	go func() { errs <- httpSrv.ListenAndServe() }()
	fmt.Printf("lqsd listening on %s (max-concurrent=%d, pace=%v/%v)\n",
		*addr, *maxConc, *pace, *paceIvl)

	sigs := make(chan os.Signal, 1)
	signal.Notify(sigs, os.Interrupt, syscall.SIGTERM)
	select {
	case err := <-errs:
		fmt.Fprintf(os.Stderr, "lqsd: %v\n", err)
		os.Exit(1)
	case sig := <-sigs:
		fmt.Printf("lqsd: %v, draining (up to %v)...\n", sig, *drainFor)
	}

	ctx, cancel := context.WithTimeout(context.Background(), *drainFor)
	defer cancel()
	_ = httpSrv.Shutdown(ctx)
	if err := srv.Shutdown(ctx); err != nil {
		fmt.Printf("lqsd: drain window expired; running queries cancelled\n")
	}
	fmt.Println("lqsd: drained")
}
